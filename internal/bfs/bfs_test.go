package bfs

import (
	"testing"
	"testing/quick"

	"repro/internal/asym"
	"repro/internal/graph"
	"repro/internal/parallel"
)

func setup(g *graph.Graph, omega int) (graph.View, *parallel.Ctx, *asym.Meter) {
	m := asym.NewMeter(omega)
	return graph.View{G: g, M: m}, parallel.NewCtx(m, asym.NewSymTracker(0)), m
}

func TestTreeCoversComponent(t *testing.T) {
	g := graph.Grid2D(8, 8)
	vw, c, m := setup(g, 8)
	parent := asym.NewArray(m, g.N())
	parent.Fill(Unvisited)
	res := Tree(c, vw, 0, parent)
	if res.Visited != 64 {
		t.Fatalf("visited = %d, want 64", res.Visited)
	}
	if res.Levels != 15 { // eccentricity of corner in 8x8 grid is 14
		t.Fatalf("levels = %d, want 15", res.Levels)
	}
	if parent.Raw()[0] != 0 {
		t.Fatal("root parent not self")
	}
	// Every parent pointer is a real edge toward the root.
	for v := 1; v < g.N(); v++ {
		p := parent.Raw()[v]
		found := false
		for _, u := range g.Adj(v) {
			if u == p {
				found = true
			}
		}
		if !found {
			t.Fatalf("parent[%d]=%d is not a neighbor", v, p)
		}
	}
}

func TestTreeStopsAtComponent(t *testing.T) {
	g := graph.Disconnected(graph.Cycle(5), 2)
	vw, c, m := setup(g, 8)
	parent := asym.NewArray(m, g.N())
	parent.Fill(Unvisited)
	res := Tree(c, vw, 0, parent)
	if res.Visited != 5 {
		t.Fatalf("visited = %d, want 5", res.Visited)
	}
	for v := 5; v < 10; v++ {
		if parent.Raw()[v] != Unvisited {
			t.Fatalf("vertex %d in other component visited", v)
		}
	}
}

func TestTreeParentDistancesMonotone(t *testing.T) {
	// BFS parents must give shortest-path distances: dist(v) = dist(parent)+1.
	g := graph.GNM(200, 600, 3, true)
	vw, c, m := setup(g, 4)
	parent := asym.NewArray(m, g.N())
	parent.Fill(Unvisited)
	Tree(c, vw, 0, parent)
	dist := refDistances(g, 0)
	for v := 1; v < g.N(); v++ {
		p := parent.Raw()[v]
		if dist[v] != dist[p]+1 {
			t.Fatalf("vertex %d: dist %d but parent dist %d", v, dist[v], dist[p])
		}
	}
}

func refDistances(g *graph.Graph, src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	q := []int{src}
	for len(q) > 0 {
		v := q[0]
		q = q[1:]
		for _, u := range g.Adj(v) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				q = append(q, int(u))
			}
		}
	}
	return dist
}

func TestWriteEfficiency(t *testing.T) {
	// The defining property: writes O(n visited), independent of m.
	g := graph.GNM(500, 8000, 5, true)
	vw, c, m := setup(g, 16)
	parent := asym.NewArray(m, g.N())
	parent.Fill(Unvisited)
	before := m.Snapshot()
	Tree(c, vw, 0, parent)
	d := m.Snapshot().Sub(before)
	if d.Writes > int64(2*g.N()) {
		t.Fatalf("writes = %d for n=%d m=%d; BFS must write O(n)", d.Writes, g.N(), g.M())
	}
	if d.Reads < int64(g.M()) {
		t.Fatalf("reads = %d < m=%d; every edge must be scanned", d.Reads, g.M())
	}
}

func TestLabelMultiSource(t *testing.T) {
	g := graph.Disconnected(graph.Cycle(6), 3) // components {0..5},{6..11},{12..17}
	vw, c, m := setup(g, 8)
	label := asym.NewArray(m, g.N())
	label.Fill(Unvisited)
	srcs := []int32{0, 6, 12}
	res := Label(c, vw, srcs, label, func(i int) int32 { return int32(100 + i) })
	if res.Visited != 18 {
		t.Fatalf("visited = %d", res.Visited)
	}
	for v := 0; v < 18; v++ {
		want := int32(100 + v/6)
		if label.Raw()[v] != want {
			t.Fatalf("label[%d] = %d, want %d", v, label.Raw()[v], want)
		}
	}
}

func TestLabelWavefrontPartition(t *testing.T) {
	// Two sources on a path: each claims its own half.
	g := graph.Path(11)
	vw, c, m := setup(g, 8)
	label := asym.NewArray(m, g.N())
	label.Fill(Unvisited)
	Label(c, vw, []int32{0, 10}, label, func(i int) int32 { return int32(i) })
	for v := 0; v <= 4; v++ {
		if label.Raw()[v] != 0 {
			t.Fatalf("label[%d] = %d", v, label.Raw()[v])
		}
	}
	for v := 6; v <= 10; v++ {
		if label.Raw()[v] != 1 {
			t.Fatalf("label[%d] = %d", v, label.Raw()[v])
		}
	}
}

func TestLabelDuplicateSources(t *testing.T) {
	g := graph.Cycle(4)
	vw, c, m := setup(g, 8)
	label := asym.NewArray(m, g.N())
	label.Fill(Unvisited)
	res := Label(c, vw, []int32{0, 0}, label, func(i int) int32 { return int32(i) })
	if res.Visited != 4 {
		t.Fatalf("visited = %d", res.Visited)
	}
	for v := 0; v < 4; v++ {
		if label.Raw()[v] != 0 {
			t.Fatalf("label[%d] = %d", v, label.Raw()[v])
		}
	}
}

func TestDepthScalesWithLevelsNotEdges(t *testing.T) {
	// A long path has depth ~ levels; a dense blob has small depth.
	long := graph.Path(4096)
	vwL, cL, mL := setup(long, 4)
	pL := asym.NewArray(mL, long.N())
	pL.Fill(Unvisited)
	Tree(cL, vwL, 0, pL)

	dense := graph.GNM(4096, 40960, 2, true)
	vwD, cD, mD := setup(dense, 4)
	pD := asym.NewArray(mD, dense.N())
	pD.Fill(Unvisited)
	Tree(cD, vwD, 0, pD)

	if cD.Depth() >= cL.Depth() {
		t.Fatalf("dense depth %d >= path depth %d", cD.Depth(), cL.Depth())
	}
}

func TestTreeProperty(t *testing.T) {
	// Property: on arbitrary connected graphs, BFS visits everything and
	// parent pointers form an acyclic in-forest rooted at the source.
	f := func(seed uint64) bool {
		g := graph.GNM(60, 120, seed, true)
		vw, c, m := setup(g, 4)
		parent := asym.NewArray(m, g.N())
		parent.Fill(Unvisited)
		res := Tree(c, vw, 0, parent)
		if res.Visited != g.N() {
			return false
		}
		for v := 0; v < g.N(); v++ {
			// Walk to root; must terminate within n steps.
			x, steps := int32(v), 0
			for parent.Raw()[x] != x {
				x = parent.Raw()[x]
				if steps++; steps > g.N() {
					return false
				}
			}
			if x != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
