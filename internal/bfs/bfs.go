// Package bfs implements the write-efficient breadth-first search of
// Ben-David et al. [9], the workhorse the paper plugs into the low-diameter
// decomposition (§4.1), per-cluster spanning trees (§4.2 step 2), and the
// Euler-tour machinery of §5.
//
// Write efficiency here means: the number of asymmetric-memory writes is
// proportional to the number of *vertices* visited (each vertex's parent or
// label is written exactly once when it is claimed), never to the number of
// edges scanned. Edge scans cost reads only. Frontier bookkeeping is charged
// as unit-cost operations; the paper's BFS keeps frontiers compacted with a
// write-efficient pack whose writes are also O(vertices), so the totals
// match the O(n) write bound of Theorem 4.1.
//
// The search is level-synchronous and deterministic: within a level,
// frontier vertices are processed in the order they were claimed, and
// neighbors in priority (id) order.
package bfs

import (
	"repro/internal/asym"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// Unvisited is the sentinel stored in claim arrays before a vertex is
// reached.
const Unvisited = int32(-1)

// Result summarizes a search.
type Result struct {
	Visited int // vertices reached (including sources)
	Levels  int // BFS levels executed (eccentricity+1 from the sources)
}

// Tree runs a BFS from src, writing parent[v] for every reached vertex
// (parent[src] = src). parent must be pre-filled with Unvisited by the
// caller (so that multiple disjoint searches can share one array, as the
// per-cluster spanning trees of Theorem 4.2 do). Returns the visit count
// and level count.
func Tree(c *parallel.Ctx, vw graph.View, src int32, parent *asym.Array) Result {
	return engine(c, vw, []int32{src}, func(v, from int32) {
		parent.Set(int(v), from)
	}, func(v int) bool {
		return parent.Raw()[v] != Unvisited
	})
}

// Label runs a multi-source BFS from srcs, writing label[v] = lab(i) for
// every vertex reached, where i is the index of the source whose wavefront
// claimed v (ties: the earlier source in srcs). label must be pre-filled
// with Unvisited. This is the primitive the low-diameter decomposition and
// the connected-components labeling build on.
func Label(c *parallel.Ctx, vw graph.View, srcs []int32, label *asym.Array, lab func(srcIdx int) int32) Result {
	idx := make(map[int32]int, len(srcs))
	for i, s := range srcs {
		if _, ok := idx[s]; !ok { // first occurrence wins for duplicates
			idx[s] = i
		}
	}
	return engine(c, vw, srcs, func(v, from int32) {
		if i, ok := idx[v]; ok && v == from {
			label.Set(int(v), lab(i))
			return
		}
		label.Set(int(v), label.Get(int(from))) // inherit the claimer's label
	}, func(v int) bool {
		return label.Raw()[v] != Unvisited
	})
}

// engine is the shared level-synchronous search. claim(v, from) must write
// the vertex's output word exactly once (that is the one asymmetric write
// per vertex); seen(v) reads the claim state without charging — the engine
// charges one read per seen test itself, modeling the claim-array probe.
func engine(c *parallel.Ctx, vw graph.View, srcs []int32, claim func(v, from int32), seen func(v int) bool) Result {
	m := vw.M
	frontier := make([]int32, 0, len(srcs))
	if c.Sym() != nil {
		// Frontier high-water accounting: the paper keeps frontiers in
		// asymmetric memory; we track them as symmetric scratch and charge
		// the per-vertex write through claim, which matches the O(n)
		// write bound either way.
		defer c.Sym().Release(0)
	}
	visited := 0
	for _, s := range srcs {
		m.Read(1) // probe claim state
		if seen(int(s)) {
			continue
		}
		claim(s, s)
		frontier = append(frontier, s)
		visited++
	}
	levels := 0
	next := make([]int32, 0, 64)
	for len(frontier) > 0 {
		levels++
		next = next[:0]
		maxDeg := 0
		for _, v := range frontier {
			d := vw.Degree(int(v))
			if d > maxDeg {
				maxDeg = d
			}
			for i := 0; i < d; i++ {
				u := vw.Neighbor(int(v), i)
				m.Read(1) // probe claim state of u
				if seen(int(u)) {
					continue
				}
				claim(u, v)
				next = append(next, u)
				visited++
			}
			m.Op(1)
		}
		// Depth per level: neighbor scans run in parallel across the
		// frontier (max degree), followed by an O(log n)-depth pack whose
		// packing writes cost ω each in the model (Theorem 4.1 depth
		// O(ω log²n / β) comes from exactly this term).
		c.AddDepth(int64(maxDeg) + int64(c.Meter().Omega()) + logDepth(len(frontier)))
		frontier, next = next, frontier
	}
	return Result{Visited: visited, Levels: levels}
}

func logDepth(n int) int64 {
	d := int64(1)
	for n > 1 {
		n >>= 1
		d++
	}
	return d
}
