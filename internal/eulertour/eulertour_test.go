package eulertour

import (
	"testing"
	"testing/quick"

	"repro/internal/asym"
	"repro/internal/graph"
)

// pathTree returns parent pointers for a path 0-1-2-...-n rooted at 0.
func pathTree(n int) []int32 {
	p := make([]int32, n)
	for v := 1; v < n; v++ {
		p[v] = int32(v - 1)
	}
	return p
}

// bfsParents builds a BFS spanning tree of g from root.
func bfsParents(g *graph.Graph, root int32) []int32 {
	p := make([]int32, g.N())
	for v := range p {
		p[v] = -1
	}
	p[root] = root
	q := []int32{root}
	for len(q) > 0 {
		v := q[0]
		q = q[1:]
		for _, u := range g.Adj(int(v)) {
			if p[u] < 0 {
				p[u] = v
				q = append(q, u)
			}
		}
	}
	return p
}

func TestRanksPath(t *testing.T) {
	m := asym.NewMeter(4)
	tr := New(m, 0, pathTree(5))
	for v := int32(0); v < 5; v++ {
		if tr.First(m, v) != v {
			t.Fatalf("first(%d) = %d", v, tr.First(m, v))
		}
		if tr.Last(m, v) != 4 {
			t.Fatalf("last(%d) = %d", v, tr.Last(m, v))
		}
		if tr.Depth(m, v) != v {
			t.Fatalf("depth(%d) = %d", v, tr.Depth(m, v))
		}
	}
}

func TestSubtreeContainment(t *testing.T) {
	// Star rooted at 0: each leaf is its own subtree.
	p := []int32{0, 0, 0, 0}
	m := asym.NewMeter(4)
	tr := New(m, 0, p)
	for v := int32(1); v < 4; v++ {
		if !tr.IsAncestor(m, 0, v) {
			t.Fatalf("root not ancestor of %d", v)
		}
		if tr.IsAncestor(m, v, 0) {
			t.Fatalf("%d ancestor of root", v)
		}
		if tr.First(m, v) != tr.Last(m, v) {
			t.Fatalf("leaf %d has subtree range", v)
		}
	}
}

func TestLCAOnGrid(t *testing.T) {
	g := graph.Grid2D(6, 6)
	p := bfsParents(g, 0)
	m := asym.NewMeter(4)
	tr := New(m, 0, p)
	// Reference LCA by walking parents.
	ref := func(u, v int32) int32 {
		au := map[int32]bool{}
		for x := u; ; x = p[x] {
			au[x] = true
			if p[x] == x {
				break
			}
		}
		for x := v; ; x = p[x] {
			if au[x] {
				return x
			}
			if p[x] == x {
				break
			}
		}
		return 0
	}
	for u := int32(0); u < 36; u += 5 {
		for v := int32(0); v < 36; v += 7 {
			if got, want := tr.LCA(m, u, v), ref(u, v); got != want {
				t.Fatalf("LCA(%d,%d) = %d, want %d", u, v, got, want)
			}
		}
	}
}

func TestLCAProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.RandomTree(80, seed)
		p := bfsParents(g, 0)
		m := asym.NewMeter(1)
		tr := New(m, 0, p)
		rng := graph.NewRNG(seed + 1)
		for i := 0; i < 30; i++ {
			u, v := int32(rng.Intn(80)), int32(rng.Intn(80))
			l := tr.LCA(m, u, v)
			if !tr.IsAncestor(m, l, u) || !tr.IsAncestor(m, l, v) {
				return false
			}
			// No deeper common ancestor: l's children toward u and v differ
			// unless l == u or l == v.
			if l != u && l != v {
				cu := tr.AncestorAtDepth(m, u, tr.Depth(m, l)+1)
				cv := tr.AncestorAtDepth(m, v, tr.Depth(m, l)+1)
				if cu == cv {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestAncestorAtDepth(t *testing.T) {
	m := asym.NewMeter(4)
	tr := New(m, 0, pathTree(16))
	for v := int32(0); v < 16; v++ {
		for d := int32(0); d <= v; d++ {
			if got := tr.AncestorAtDepth(m, v, d); got != d {
				t.Fatalf("AncestorAtDepth(%d,%d) = %d", v, d, got)
			}
		}
	}
}

func TestLeaffixSubtreeSizes(t *testing.T) {
	g := graph.RandomTree(50, 7)
	p := bfsParents(g, 0)
	m := asym.NewMeter(4)
	tr := New(m, 0, p)
	sizes := tr.Leaffix(m, func(int32) int64 { return 1 },
		func(a, b int64) int64 { return a + b }, nil)
	if sizes[0] != 50 {
		t.Fatalf("root subtree = %d", sizes[0])
	}
	// Each vertex's subtree size equals 1 + sum of children's.
	ch, _ := childrenOf(p)
	var rec func(v int32) int64
	rec = func(v int32) int64 {
		s := int64(1)
		for _, c := range ch[v] {
			s += rec(c)
		}
		return s
	}
	for v := int32(0); v < 50; v++ {
		if sizes[v] != rec(v) {
			t.Fatalf("size(%d) = %d, want %d", v, sizes[v], rec(v))
		}
	}
}

func childrenOf(p []int32) ([][]int32, []int32) {
	n := len(p)
	ch := make([][]int32, n)
	var roots []int32
	for v := 0; v < n; v++ {
		if p[v] == int32(v) {
			roots = append(roots, int32(v))
		} else {
			ch[p[v]] = append(ch[p[v]], int32(v))
		}
	}
	return ch, roots
}

func TestRootfixDepths(t *testing.T) {
	g := graph.RandomTree(40, 9)
	p := bfsParents(g, 0)
	m := asym.NewMeter(4)
	tr := New(m, 0, p)
	depths := tr.Rootfix(m, func(v int32) int64 {
		if p[v] == v {
			return 0
		}
		return 1
	}, func(par, self int64) int64 { return par + self }, nil)
	for v := int32(0); v < 40; v++ {
		if depths[v] != int64(tr.Depth(m, v)) {
			t.Fatalf("rootfix depth(%d) = %d, want %d", v, depths[v], tr.Depth(m, v))
		}
	}
}

func TestForest(t *testing.T) {
	// Two trees: 0-1-2 and 3-4.
	p := []int32{0, 0, 1, 3, 3}
	m := asym.NewMeter(4)
	tr := NewForest(m, []int32{0, 3}, p)
	if !tr.InTree(4) || !tr.InTree(2) {
		t.Fatal("forest vertex missing")
	}
	if tr.IsAncestor(m, 0, 3) || tr.IsAncestor(m, 3, 2) {
		t.Fatal("cross-tree ancestry")
	}
	sizes := tr.Leaffix(m, func(int32) int64 { return 1 },
		func(a, b int64) int64 { return a + b }, nil)
	if sizes[0] != 3 || sizes[3] != 2 {
		t.Fatalf("forest subtree sizes: %v", sizes)
	}
	depths := tr.Rootfix(m, func(v int32) int64 {
		if p[v] == v {
			return 0
		}
		return 1
	}, func(par, self int64) int64 { return par + self }, nil)
	if depths[3] != 0 || depths[4] != 1 {
		t.Fatalf("forest rootfix: %v", depths)
	}
}

func TestSpillArrays(t *testing.T) {
	p := pathTree(8)
	m := asym.NewMeter(4)
	tr := New(m, 0, p)
	spill := asym.NewArray64(m, 8)
	before := m.Writes()
	tr.Leaffix(m, func(int32) int64 { return 1 },
		func(a, b int64) int64 { return a + b }, spill)
	if m.Writes()-before < 8 {
		t.Fatal("spill did not charge writes")
	}
	if spill.Raw()[0] != 8 {
		t.Fatalf("spilled root = %d", spill.Raw()[0])
	}
}

func TestChildrenLists(t *testing.T) {
	p := []int32{0, 0, 0, 1, 1}
	m := asym.NewMeter(4)
	tr := New(m, 0, p)
	ch := tr.ChildrenLists(m)
	if len(ch[0]) != 2 || len(ch[1]) != 2 || len(ch[2]) != 0 {
		t.Fatalf("children: %v", ch)
	}
	got := tr.Children(m, 1)
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("Children(1) = %v", got)
	}
}
