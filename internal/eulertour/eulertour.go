// Package eulertour provides the rooted-tree machinery of the classic
// parallel biconnectivity algorithm (paper §5.1): Euler-tour first/last
// ranks, subtree (leaffix) and path (rootfix) aggregates, depths, ancestor
// tests, and lowest-common-ancestor queries.
//
// The paper's LCA citation ([11, 42]) achieves O(n) preprocessing and O(1)
// queries; this implementation substitutes binary lifting — O(n log n)
// preprocessing writes and O(log n) query reads — which changes no
// experiment's shape (LCA is a lower-order term everywhere it is used).
// The substitution is recorded in DESIGN.md.
package eulertour

import (
	"sync"

	"repro/internal/asym"
)

// Tree is a rooted tree (or forest attached at per-component roots) over
// vertices 0..n-1 given by parent pointers, with preprocessed rank, depth,
// and ancestor structures. All preprocessing writes are charged at build
// time; query methods charge reads on the meter they are given.
type Tree struct {
	root   int32
	parent []int32
	// first/last are the Euler-tour entry ranks: first[v] is v's preorder
	// index and last[v] the maximum preorder index in v's subtree, so
	// u ∈ subtree(v) ⇔ first[v] <= first[u] <= last[v].
	first, last []int32
	depth       []int32
	order       []int32   // vertices in preorder
	up          [][]int32 // binary lifting: up[j][v] = 2^j-th ancestor
	liftOnce    sync.Once // guards the lazy construction of up
}

// New builds the structure for a single rooted tree; see NewForest for
// spanning forests. Charges O(n log n) writes for the tables.
func New(m *asym.Meter, root int32, parent []int32) *Tree {
	return NewForest(m, []int32{root}, parent)
}

// NewForest builds the structure for a forest given by parent pointers
// (parent[r] = r for each root in roots). Ranks are assigned across the
// whole forest in roots order, so subtree containment tests remain valid
// within each tree. Charges O(n log n) writes for the tables.
func NewForest(m *asym.Meter, roots []int32, parent []int32) *Tree {
	n := len(parent)
	root := int32(-1)
	if len(roots) > 0 {
		root = roots[0]
	}
	t := &Tree{
		root:   root,
		parent: parent,
		first:  make([]int32, n),
		last:   make([]int32, n),
		depth:  make([]int32, n),
		order:  make([]int32, 0, n),
	}
	children := make([][]int32, n)
	for v := 0; v < n; v++ {
		p := parent[v]
		if p != int32(v) {
			children[p] = append(children[p], int32(v))
		}
	}
	m.Read(n)
	// Iterative preorder DFS from each root (children in id order for
	// determinism; FromEdges sorts adjacency so BFS parents yield sorted
	// children lists here too).
	for v := range t.first {
		t.first[v] = -1
		t.last[v] = -1
	}
	type frame struct {
		v  int32
		ci int
	}
	rank := int32(0)
	for _, r := range roots {
		stack := []frame{{r, 0}}
		t.first[r] = rank
		t.depth[r] = 0
		t.order = append(t.order, r)
		rank++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.ci < len(children[f.v]) {
				c := children[f.v][f.ci]
				f.ci++
				t.first[c] = rank
				t.depth[c] = t.depth[f.v] + 1
				t.order = append(t.order, c)
				rank++
				stack = append(stack, frame{c, 0})
				continue
			}
			t.last[f.v] = rank - 1
			stack = stack[:len(stack)-1]
		}
	}
	m.Write(3 * n) // first, last, depth
	return t
}

// ensureLift builds the binary-lifting table on first use. LCA consumers
// (the §5.3 oracle) pay for it once; structures that never ask for LCAs
// (the plain BC labeling) never do.
//
// Cost note: the charged writes are O(n), the cost of the O(n)-word
// O(1)-query LCA structures the paper cites ([11, 42]). The implementation
// substitutes binary lifting, whose table is n·⌈log n⌉ words; the extra
// words are an artifact of the substitution, not of the modeled algorithm,
// so they are not charged (recorded in DESIGN.md).
//
// Concurrency: the table is built under a sync.Once so that the first LCA
// may safely come from one of many concurrent query goroutines (the serving
// layer issues parallel queries against a shared oracle). Oracle
// constructors still force the build eagerly so its writes are charged to
// construction rather than to whichever query happens to arrive first.
func (t *Tree) ensureLift(m *asym.Meter) {
	t.liftOnce.Do(func() {
		n := t.N()
		levels := 1
		for (1 << levels) < n {
			levels++
		}
		up := make([][]int32, levels)
		up[0] = t.parent
		for j := 1; j < levels; j++ {
			up[j] = make([]int32, n)
			for v := 0; v < n; v++ {
				up[j][v] = up[j-1][up[j-1][v]]
			}
		}
		t.up = up
		m.Write(n)
	})
}

// Root returns the root vertex.
func (t *Tree) Root() int32 { return t.root }

// N returns the number of vertices.
func (t *Tree) N() int { return len(t.parent) }

// InTree reports whether v was reached from the root.
func (t *Tree) InTree(v int32) bool { return t.first[v] >= 0 }

// Parent returns v's parent (root maps to itself), charging one read.
func (t *Tree) Parent(m *asym.Meter, v int32) int32 {
	m.Read(1)
	return t.parent[v]
}

// First returns v's Euler-tour entry rank, charging one read.
func (t *Tree) First(m *asym.Meter, v int32) int32 {
	m.Read(1)
	return t.first[v]
}

// Last returns the maximum entry rank in v's subtree, charging one read.
func (t *Tree) Last(m *asym.Meter, v int32) int32 {
	m.Read(1)
	return t.last[v]
}

// Depth returns v's depth (root = 0), charging one read.
func (t *Tree) Depth(m *asym.Meter, v int32) int32 {
	m.Read(1)
	return t.depth[v]
}

// IsAncestor reports whether a is an ancestor of v (inclusive), charging
// O(1) reads.
func (t *Tree) IsAncestor(m *asym.Meter, a, v int32) bool {
	m.Read(2)
	return t.first[a] <= t.first[v] && t.first[v] <= t.last[a]
}

// LCA returns the lowest common ancestor of u and v, charging O(log n)
// reads. Both must be in the tree.
func (t *Tree) LCA(m *asym.Meter, u, v int32) int32 {
	t.ensureLift(m)
	if t.IsAncestor(m, u, v) {
		return u
	}
	if t.IsAncestor(m, v, u) {
		return v
	}
	x := u
	for j := len(t.up) - 1; j >= 0; j-- {
		m.Read(1)
		if !t.IsAncestor(m, t.up[j][x], v) {
			x = t.up[j][x]
		}
	}
	m.Read(1)
	return t.parent[x]
}

// AncestorAtDepth returns u's ancestor at the given depth (<= depth(u)),
// charging O(log n) reads.
func (t *Tree) AncestorAtDepth(m *asym.Meter, u int32, d int32) int32 {
	t.ensureLift(m)
	diff := t.depth[u] - d
	m.Read(1)
	for j := 0; diff > 0; j++ {
		if diff&1 == 1 {
			u = t.up[j][u]
			m.Read(1)
		}
		diff >>= 1
	}
	return u
}

// Leaffix computes, for every vertex, an aggregate over its subtree:
// out[v] = combine(init(v), out[c1], out[c2], ...) for v's children ci.
// Runs in reverse preorder (children before parents); charges O(n) reads
// and, if spill is non-nil, O(n) writes into it. This is the paper's
// leaffix primitive ("similar to prefix but defined on a tree and computed
// from the leaves to the root").
func (t *Tree) Leaffix(m *asym.Meter, init func(v int32) int64, combine func(a, b int64) int64, spill *asym.Array64) []int64 {
	n := t.N()
	out := make([]int64, n)
	for _, v := range t.order {
		out[v] = init(v)
		m.Op(1)
	}
	// Fold children into parents: iterate reverse preorder so each vertex's
	// aggregate is complete before it is pushed into its parent. Forest
	// roots (parent[v] == v) fold into nothing.
	for i := len(t.order) - 1; i >= 1; i-- {
		v := t.order[i]
		p := t.parent[v]
		if p != v {
			out[p] = combine(out[p], out[v])
		}
		m.Op(1)
	}
	if spill != nil {
		for v := 0; v < n; v++ {
			spill.Set(v, out[v])
		}
	}
	return out
}

// Rootfix computes, for every vertex, an aggregate over its ancestors:
// out[v] = combine(out[parent(v)], init(v)), out[root] = init(root).
// Charges O(n) reads and, if spill is non-nil, O(n) writes.
func (t *Tree) Rootfix(m *asym.Meter, init func(v int32) int64, combine func(parent, self int64) int64, spill *asym.Array64) []int64 {
	n := t.N()
	out := make([]int64, n)
	for _, v := range t.order {
		if t.parent[v] == v { // a forest root
			out[v] = init(v)
		} else {
			out[v] = combine(out[t.parent[v]], init(v))
		}
		m.Op(1)
	}
	if spill != nil {
		for v := 0; v < n; v++ {
			spill.Set(v, out[v])
		}
	}
	return out
}

// Children returns v's children in id order (a fresh slice each call; used
// by construction passes, charging one read per child).
func (t *Tree) Children(m *asym.Meter, v int32) []int32 {
	var out []int32
	// Children are contiguous in preorder? Not necessarily adjacent, so
	// recompute from parent pointers lazily: scan is avoided by callers
	// that need bulk access using ChildrenLists.
	for _, u := range t.order {
		if u != v && t.parent[u] == v {
			out = append(out, u)
		}
	}
	m.Read(len(out))
	return out
}

// ChildrenLists returns all children lists at once (O(n) reads).
func (t *Tree) ChildrenLists(m *asym.Meter) [][]int32 {
	n := t.N()
	ch := make([][]int32, n)
	for _, v := range t.order {
		if v != t.root && t.InTree(v) {
			p := t.parent[v]
			ch[p] = append(ch[p], v)
		}
	}
	m.Read(n)
	return ch
}
