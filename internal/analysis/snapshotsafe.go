package analysis

import (
	"go/ast"
	"go/types"
)

// SnapshotSafe enforces the serving layer's publish-then-freeze discipline:
// a type annotated //wec:immutable (the epoch snapshot behind
// serve.Engine's atomic pointer and everything reachable from it — the
// oracles, the decomposition) may only have its fields assigned inside
// functions annotated //wec:mutator <reason> (constructors, builders, and
// the copy-on-write owners of private clones). Everything else is a
// mutate-after-publish hazard that the -race gate can only catch when a
// racing query happens to observe it; this rule catches it on every run.
//
// The check is per-package and syntactic over field assignments: mutation
// through an aliased sub-slice or an unannotated helper in another package
// is out of scope (unexported fields keep cross-package writes out by
// construction).
var SnapshotSafe = &Analyzer{
	Name: "snapshotsafe",
	Doc:  "fields of //wec:immutable types may only be assigned in //wec:mutator functions",
	Run:  runSnapshotSafe,
}

func runSnapshotSafe(pass *Pass) error {
	marked := immutableTypes(pass)
	if len(marked) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var lhs []ast.Expr
			switch st := n.(type) {
			case *ast.AssignStmt:
				lhs = st.Lhs
			case *ast.IncDecStmt:
				lhs = []ast.Expr{st.X}
			default:
				return true
			}
			for _, e := range lhs {
				sel, fieldOwner := markedFieldWrite(pass, e, marked)
				if sel == nil {
					continue
				}
				fn := enclosingFunc(f, e.Pos())
				if fn != nil && FuncDirective(fn, DirMutator) != nil {
					continue
				}
				pass.Reportf(e.Pos(),
					"assignment to field %s of snapshot-immutable type %s outside a //wec:mutator function",
					sel.Sel.Name, fieldOwner)
			}
			return true
		})
	}
	return nil
}

// immutableTypes collects the named types of this package whose
// declarations carry //wec:immutable.
func immutableTypes(pass *Pass) map[*types.TypeName]bool {
	marked := map[*types.TypeName]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			declMarked := docDirective(gd.Doc, DirImmutable) != nil
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !declMarked && docDirective(ts.Doc, DirImmutable) == nil {
					continue
				}
				if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
					marked[tn] = true
				}
			}
		}
	}
	return marked
}

// markedFieldWrite reports whether assigning through e writes a field of a
// marked type: the LHS is unwrapped through index/star/paren layers, and
// every selector on the way down is tested, so x.Field = v, x.Field[i] = v
// and x.A.B = v (A's owner marked) all count. Returns the offending
// selector and the owner type's name.
func markedFieldWrite(pass *Pass, e ast.Expr, marked map[*types.TypeName]bool) (*ast.SelectorExpr, string) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if sel := pass.TypesInfo.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
				if tn := namedTypeName(sel.Recv()); tn != nil && marked[tn] {
					return x, tn.Name()
				}
			}
			e = x.X
		default:
			return nil, ""
		}
	}
}

// namedTypeName returns the TypeName of t after stripping pointers; nil for
// unnamed types.
func namedTypeName(t types.Type) *types.TypeName {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u.Obj()
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return nil
		}
	}
}
