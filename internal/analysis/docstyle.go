package analysis

import (
	"strings"

	"repro/internal/lintdoc"
)

// DocPackages lists the packages under godoc-coverage enforcement: the
// serving and registry layers (covered since PR 6 via per-package tests,
// now through the one weclint entry point), the paper oracles and their
// storage (conn, bicc, store, graph), the observability core (obs), and
// the analysis suite itself.
var DocPackages = []string{
	"repro/internal/serve",
	"repro/internal/oracle",
	"repro/internal/conn",
	"repro/internal/bicc",
	"repro/internal/store",
	"repro/internal/graph",
	"repro/internal/obs",
	"repro/internal/analysis",
	"repro/internal/lintdoc",
}

// DocStyle runs the internal/lintdoc godoc-coverage rule (revive
// "exported"-style: every exported top-level identifier and every exported
// method on an exported type needs a doc comment) as an analyzer over
// DocPackages, replacing the per-package doc_lint_test.go entry points so
// the whole lint surface runs from one command.
var DocStyle = &Analyzer{
	Name: "docstyle",
	Doc:  "exported identifiers in API-bearing packages must carry doc comments",
	Run:  runDocStyle,
}

func runDocStyle(pass *Pass) error {
	if !pkgInScope(pass.Pkg.Path(), DocPackages) {
		return nil
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue // test helpers are not public API
		}
		for _, fd := range lintdoc.FileFindings(f) {
			pass.Reportf(fd.Pos, "exported %s has no doc comment", fd.What)
		}
	}
	return nil
}
