package analysis

import "sort"

// WecDirective keeps the //wec: escape hatches honest: an unknown directive
// name (a typo silently disabling a check) and a justification-mandatory
// directive without a reason (//wec:unmetered, //wec:alloc, //wec:mutator)
// are themselves lint errors. Without this rule a misspelled
// //wec:unmeterd would make the annotated access look clean to its author
// while meteredaccess flags the line — or worse, a future rename would
// leave stale directives that suppress nothing but still read as if they
// did.
var WecDirective = &Analyzer{
	Name: "wecdirective",
	Doc:  "//wec: directives must use known names and carry required reasons",
	Run:  runWecDirective,
}

func runWecDirective(pass *Pass) error {
	ds := pass.Directives.All()
	sort.Slice(ds, func(i, j int) bool { return ds[i].Pos < ds[j].Pos })
	for _, d := range ds {
		needsReason, known := knownDirectives[d.Name]
		if !known {
			pass.Reportf(d.Pos, "unknown directive //wec:%s (known: alloc, immutable, mutator, noalloc, unmetered)", d.Name)
			continue
		}
		if needsReason && d.Reason == "" {
			pass.Reportf(d.Pos, "//wec:%s needs a reason: //wec:%s <why this is safe>", d.Name, d.Name)
		}
	}
	return nil
}
