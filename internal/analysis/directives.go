package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //wec: comment directives. A directive is a line comment of the form
//
//	//wec:<name> <reason...>
//
// (no space after //, mirroring //go: directives so gofmt leaves them
// alone). Placement decides scope:
//
//   - on a statement's own line, or on the line directly above it: applies
//     to that statement (meteredaccess, noallocpath escapes);
//   - in a function's doc comment: applies to the whole function
//     (//wec:mutator, //wec:noalloc);
//   - in a type declaration's doc comment: applies to the type
//     (//wec:immutable).
const (
	// DirUnmetered marks a deliberately free (uncharged) access to graph or
	// label storage in a paper-pristine package; the reason is mandatory.
	DirUnmetered = "unmetered"
	// DirMutator marks a constructor/builder function allowed to assign
	// fields of //wec:immutable types; the reason is mandatory.
	DirMutator = "mutator"
	// DirImmutable marks a type whose instances must not be mutated outside
	// //wec:mutator functions (the published-snapshot reachability set).
	DirImmutable = "immutable"
	// DirNoAlloc marks a function on the allocation-free query hot path;
	// noallocpath checks its body.
	DirNoAlloc = "noalloc"
	// DirAlloc marks a statement inside a //wec:noalloc function that is
	// allowed to allocate (error paths, legacy nil-scratch branches,
	// amortized buffer growth); the reason is mandatory.
	DirAlloc = "alloc"
)

// knownDirectives lists every valid //wec: name and whether its reason text
// is mandatory (checked by the wecdirective analyzer).
var knownDirectives = map[string]bool{
	DirUnmetered: true,
	DirMutator:   true,
	DirImmutable: false,
	DirNoAlloc:   false,
	DirAlloc:     true,
}

// A Directive is one parsed //wec:<name> <reason> comment.
type Directive struct {
	// Name is the directive keyword after "wec:".
	Name string
	// Reason is the free text after the keyword (may be empty).
	Reason string
	// Pos is the comment's position.
	Pos token.Pos
}

// A DirectiveIndex locates //wec: directives by source line.
type DirectiveIndex struct {
	fset   *token.FileSet
	byLine map[string]map[int][]Directive // filename -> line -> directives
}

// IndexDirectives scans every comment of files for //wec: directives.
func IndexDirectives(fset *token.FileSet, files []*ast.File) *DirectiveIndex {
	idx := &DirectiveIndex{fset: fset, byLine: map[string]map[int][]Directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]Directive{}
					idx.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d)
			}
		}
	}
	return idx
}

// parseDirective parses one comment as a //wec: directive.
func parseDirective(c *ast.Comment) (Directive, bool) {
	text, ok := strings.CutPrefix(c.Text, "//wec:")
	if !ok {
		return Directive{}, false
	}
	name, reason, _ := strings.Cut(text, " ")
	name = strings.TrimSpace(name)
	if name == "" {
		return Directive{}, false
	}
	return Directive{Name: name, Reason: strings.TrimSpace(reason), Pos: c.Pos()}, true
}

// At returns the named directive attached to the statement at pos: one on
// the same source line (trailing comment) or on the line directly above.
func (idx *DirectiveIndex) At(pos token.Pos, name string) *Directive {
	p := idx.fset.Position(pos)
	lines := idx.byLine[p.Filename]
	if lines == nil {
		return nil
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		for i := range lines[line] {
			if lines[line][i].Name == name {
				return &lines[line][i]
			}
		}
	}
	return nil
}

// All returns every directive in the index, in arbitrary order.
func (idx *DirectiveIndex) All() []Directive {
	var out []Directive
	for _, lines := range idx.byLine {
		for _, ds := range lines {
			out = append(out, ds...)
		}
	}
	return out
}

// docDirective returns the named directive inside a doc comment group.
func docDirective(doc *ast.CommentGroup, name string) *Directive {
	if doc == nil {
		return nil
	}
	for _, c := range doc.List {
		if d, ok := parseDirective(c); ok && d.Name == name {
			return &d
		}
	}
	return nil
}

// FuncDirective returns the named directive from fn's doc comment.
func FuncDirective(fn *ast.FuncDecl, name string) *Directive {
	return docDirective(fn.Doc, name)
}

// enclosingFunc returns the innermost FuncDecl of file containing pos.
func enclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range file.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok && fn.Pos() <= pos && pos <= fn.End() {
			return fn
		}
	}
	return nil
}
