package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MeteredPackages lists the paper-pristine algorithm packages: every access
// to graph adjacency or label storage inside them must be charged to an
// asym.Meter (via graph.View or the asym.Array Get/Set accessors), because
// the paper's read/write bounds are claims about exactly these packages.
// Deliberately free accesses carry a //wec:unmetered <reason> directive.
var MeteredPackages = []string{
	"repro/internal/conn",
	"repro/internal/bicc",
	"repro/internal/decomp",
	"repro/internal/ldd",
	"repro/internal/eulertour",
}

// unmeteredAccessors maps the full name of every raw (cost-free) accessor
// of asymmetric-memory state to the metered alternative named in the
// diagnostic. Full names follow types.Func.FullName.
var unmeteredAccessors = map[string]string{
	"(*repro/internal/graph.Graph).Adj":              "graph.View.VisitNeighbors/Neighbor",
	"(*repro/internal/graph.Graph).Degree":           "graph.View.Degree",
	"(*repro/internal/graph.Graph).EdgeIndex":        "a metered scan via graph.View",
	"(*repro/internal/graph.Graph).EdgeMultiplicity": "a metered scan via graph.View",
	"(*repro/internal/graph.Graph).Edges":            "a metered scan via graph.View",
	"(*repro/internal/asym.Array).Raw":               "asym.Array.Get/Set",
	"(*repro/internal/asym.Array64).Raw":             "asym.Array64.Get/Set",
	"(*repro/internal/asym.BitArray).RawGet":         "asym.BitArray.Get",
}

// MeteredAccess reports raw adjacency/label accesses in the paper-pristine
// packages that bypass the cost meters and are not annotated
// //wec:unmetered <reason>. PR 6's span fast path overcharge (fixed in
// commit e785161) is the class of drift this rule pins down: every free
// access is either rewritten onto a metered accessor or visibly justified.
var MeteredAccess = &Analyzer{
	Name: "meteredaccess",
	Doc:  "paper-pristine packages must access graph/label storage through metered accessors",
	Run:  runMeteredAccess,
}

func runMeteredAccess(pass *Pass) error {
	if !pkgInScope(pass.Pkg.Path(), MeteredPackages) {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue // tests assert on results; cost accounting binds algorithm code
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeFullName(pass.TypesInfo, call)
			if name == "" {
				return true
			}
			metered, hit := unmeteredAccessors[name]
			if !hit {
				return true
			}
			if d := pass.directiveFor(f, call.Pos(), DirUnmetered); d != nil {
				return true
			}
			pass.Reportf(call.Pos(),
				"unmetered access %s bypasses the cost meter; use %s or annotate //wec:unmetered <reason>",
				name, metered)
			return true
		})
	}
	return nil
}

// directiveFor finds the named directive for the statement at pos: attached
// to its line (or the line above), or in the enclosing function's doc
// comment for the function-scoped directives.
func (p *Pass) directiveFor(f *ast.File, pos token.Pos, name string) *Directive {
	if d := p.Directives.At(pos, name); d != nil {
		return d
	}
	if fn := enclosingFunc(f, pos); fn != nil {
		return FuncDirective(fn, name)
	}
	return nil
}

// pkgInScope reports whether path names one of the scoped packages (the
// exact path or a fixture loaded under it).
func pkgInScope(path string, scope []string) bool {
	for _, s := range scope {
		if path == s || path == s+"_test" {
			return true
		}
	}
	return false
}

// calleeFullName resolves a call's callee to its types.Func.FullName (e.g.
// "(*repro/internal/graph.Graph).Adj"); "" when the callee is not a named
// function or method.
func calleeFullName(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn.FullName()
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn.FullName()
		}
	}
	return ""
}
