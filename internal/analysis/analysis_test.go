package analysis

import (
	"go/ast"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func TestMeteredAccessFixture(t *testing.T) {
	RunFixture(t, MeteredAccess, "repro/internal/decomp", FixtureDir(t, "meteredaccess"))
}

// TestMeteredAccessOutOfScope loads the same fixture under a path outside
// MeteredPackages: the rule must stay silent regardless of content.
func TestMeteredAccessOutOfScope(t *testing.T) {
	names, err := filepath.Glob(filepath.Join(FixtureDir(t, "meteredaccess"), "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files: %v", err)
	}
	sort.Strings(names)
	pkg, err := LoadFiles("fixture/free", names)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{MeteredAccess})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("out-of-scope package flagged: %s", d)
	}
}

func TestSnapshotSafeFixture(t *testing.T) {
	RunFixture(t, SnapshotSafe, "fixture/snap", FixtureDir(t, "snapshotsafe"))
}

func TestTypedErrFixture(t *testing.T) {
	RunFixture(t, TypedErr, "fixture/errs", FixtureDir(t, "typederr"))
}

func TestNoAllocPathFixture(t *testing.T) {
	RunFixture(t, NoAllocPath, "fixture/noalloc", FixtureDir(t, "noallocpath"))
}

func TestDocStyleFixture(t *testing.T) {
	RunFixture(t, DocStyle, "repro/internal/graph", FixtureDir(t, "docstyle"))
}

// TestWecDirectiveFixture asserts the wecdirective diagnostics explicitly: a
// want comment cannot share a line with the directive comment it describes,
// so the analysistest convention does not apply.
func TestWecDirectiveFixture(t *testing.T) {
	pkg, err := LoadFiles("fixture/dirs",
		[]string{filepath.Join(FixtureDir(t, "wecdirective"), "fixture.go")})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{WecDirective})
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		line int
		sub  string
	}{
		{6, "unknown directive //wec:unmeterd"},
		{9, "//wec:unmetered needs a reason"},
		{12, "//wec:mutator needs a reason"},
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d: %v", len(diags), len(want), diags)
	}
	for i, w := range want {
		if diags[i].Pos.Line != w.line || !strings.Contains(diags[i].Message, w.sub) {
			t.Errorf("diagnostic %d: got %s, want line %d containing %q", i, diags[i], w.line, w.sub)
		}
	}
}

// TestLoadRepoPackage exercises the go-list loader on a real module package
// (build-tag-correct file sets, source-importer type checking).
func TestLoadRepoPackage(t *testing.T) {
	pkgs, err := Load([]string{"../lintdoc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	found := false
	for _, p := range pkgs {
		if p.Path == "repro/internal/lintdoc" {
			found = true
			if p.Types.Scope().Lookup("Check") == nil {
				t.Error("lintdoc.Check not in type-checked scope")
			}
		}
	}
	if !found {
		t.Fatalf("repro/internal/lintdoc not among %d loaded packages", len(pkgs))
	}
}

func TestParseDirective(t *testing.T) {
	cases := []struct {
		comment, name, reason string
		ok                    bool
	}{
		{"//wec:unmetered charged above", "unmetered", "charged above", true},
		{"//wec:noalloc", "noalloc", "", true},
		{"//wec:immutable", "immutable", "", true},
		{"// wec:unmetered spaced out", "", "", false}, // directives allow no space, like //go:
		{"//wec:", "", "", false},
		{"// plain comment", "", "", false},
	}
	for _, c := range cases {
		d, ok := parseDirective(&ast.Comment{Text: c.comment})
		if ok != c.ok {
			t.Errorf("parseDirective(%q): ok=%v, want %v", c.comment, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if d.Name != c.name || d.Reason != c.reason {
			t.Errorf("parseDirective(%q) = {%q %q}, want {%q %q}", c.comment, d.Name, d.Reason, c.name, c.reason)
		}
	}
}

// TestAllAnalyzersRegistered pins the suite: every analyzer is reachable
// from All() under its documented name.
func TestAllAnalyzersRegistered(t *testing.T) {
	want := []string{"meteredaccess", "snapshotsafe", "typederr", "noallocpath", "docstyle", "wecdirective"}
	got := map[string]bool{}
	for _, a := range All() {
		got[a.Name] = true
	}
	for _, name := range want {
		if !got[name] {
			t.Errorf("analyzer %q missing from All()", name)
		}
	}
	if len(got) != len(want) {
		t.Errorf("All() has %d analyzers, want %d", len(got), len(want))
	}
}
