package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAllocPath checks functions annotated //wec:noalloc — the FastAnswerer
// query hot path (serve.Engine.answer, the adapters' AnswerFast, the conn
// QueryS/ConnectedS pair, the decomp scratch BFS) whose steady-state
// "0 allocs/query" result is recorded in BENCH_query_hot_path.json — for
// allocation-shaped constructs:
//
//   - make / new, map and slice composite literals, &composite;
//   - append calls, unless dominated by a `len(x) < cap(x)` guard on the
//     same slice — as an if condition or a tagless switch case — the arena
//     idiom that provably cannot grow;
//   - boxing a non-pointer-shaped concrete value into an interface
//     (assignment, call argument, or conversion);
//   - string concatenation and string<->slice conversions;
//   - fmt.* / errors.* calls, taking the address of a local variable, and
//     escaping closures (a func literal that is returned or stored; one
//     passed directly as a call argument is presumed non-escaping).
//
// A construct that is deliberately off the steady-state path — an error
// branch, the legacy nil-scratch mode, amortized high-water buffer growth —
// carries //wec:alloc <reason> on its line. The static rule is
// approximate in both directions (it cannot see escape analysis), so the
// testing.AllocsPerRun gate in internal/serve provides the runtime ground
// truth it is calibrated against.
var NoAllocPath = &Analyzer{
	Name: "noallocpath",
	Doc:  "//wec:noalloc functions must avoid allocation-shaped constructs or annotate them",
	Run:  runNoAllocPath,
}

func runNoAllocPath(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || FuncDirective(fn, DirNoAlloc) == nil {
				continue
			}
			checkNoAlloc(pass, fn)
		}
	}
	return nil
}

// checkNoAlloc walks fn's body with an ancestor stack (for the append
// guard and escape context checks).
func checkNoAlloc(pass *Pass, fn *ast.FuncDecl) {
	report := func(pos token.Pos, format string, args ...any) {
		if pass.Directives.At(pos, DirAlloc) != nil {
			return
		}
		pass.Reportf(pos, format, args...)
	}
	var results *types.Tuple
	if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
		results = obj.Signature().Results()
	}
	var stack []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch x := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, x, stack, report)
		case *ast.CompositeLit:
			switch types.Unalias(pass.TypesInfo.TypeOf(x)).Underlying().(type) {
			case *types.Slice:
				report(x.Pos(), "slice literal allocates on the //wec:noalloc path")
			case *types.Map:
				report(x.Pos(), "map literal allocates on the //wec:noalloc path")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				switch op := ast.Unparen(x.X).(type) {
				case *ast.CompositeLit:
					report(x.Pos(), "&composite literal escapes to the heap on the //wec:noalloc path")
				case *ast.Ident:
					if v, ok := pass.TypesInfo.Uses[op].(*types.Var); ok && !v.IsField() && v.Parent() != v.Pkg().Scope() {
						report(x.Pos(), "taking the address of local %s may force a heap allocation on the //wec:noalloc path", op.Name)
					}
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isString(pass.TypesInfo.TypeOf(x)) {
				report(x.Pos(), "string concatenation allocates on the //wec:noalloc path")
			}
		case *ast.GoStmt:
			report(x.Pos(), "go statement allocates a goroutine on the //wec:noalloc path")
		case *ast.FuncLit:
			if escapingFuncLit(stack) {
				report(x.Pos(), "stored or returned closure allocates on the //wec:noalloc path")
			}
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i, lhs := range x.Lhs {
					checkBoxing(pass, pass.TypesInfo.TypeOf(lhs), x.Rhs[i], report)
				}
				break
			}
			// Multi-value assignment from one call. `:=` infers the exact
			// tuple types — no conversion, no boxing. Plain `=` into
			// pre-declared interface variables converts element-wise, so
			// check each tuple element type against its destination.
			if x.Tok == token.DEFINE || len(x.Rhs) != 1 {
				break
			}
			if tuple, ok := pass.TypesInfo.TypeOf(x.Rhs[0]).(*types.Tuple); ok {
				for i, lhs := range x.Lhs {
					if i < tuple.Len() {
						checkBoxingType(pass, pass.TypesInfo.TypeOf(lhs), tuple.At(i).Type(), x.Rhs[0].Pos(), report)
					}
				}
			}
		case *ast.ReturnStmt:
			// Skip FuncLit return statements: results belongs to fn itself.
			if results != nil && len(x.Results) == results.Len() && !insideFuncLit(stack) {
				for i, res := range x.Results {
					checkBoxing(pass, results.At(i).Type(), res, report)
				}
			}
		}
		return true
	}
	ast.Inspect(fn.Body, visit)
}

// insideFuncLit reports whether the stack top sits inside a func literal
// (whose return statements answer the literal's own signature).
func insideFuncLit(stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		if _, ok := stack[i].(*ast.FuncLit); ok {
			return true
		}
	}
	return false
}

// checkCall flags allocation-shaped calls: make/new, fmt/errors helpers,
// unguarded append, string<->slice conversions, and interface boxing of
// arguments.
func checkCall(pass *Pass, call *ast.CallExpr, stack []ast.Node, report func(token.Pos, string, ...any)) {
	// Conversions: T(x) with an allocating representation change.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		to := tv.Type
		if len(call.Args) == 1 {
			from := pass.TypesInfo.TypeOf(call.Args[0])
			switch {
			case types.IsInterface(to.Underlying()):
				checkBoxing(pass, to, call.Args[0], report)
			case isString(to) && !isString(from), !isString(to) && isString(from) && isSliceType(to):
				report(call.Pos(), "string/slice conversion allocates on the //wec:noalloc path")
			}
		}
		return
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch pass.TypesInfo.Uses[fun] {
		case types.Universe.Lookup("make"):
			report(call.Pos(), "make allocates on the //wec:noalloc path")
			return
		case types.Universe.Lookup("new"):
			report(call.Pos(), "new allocates on the //wec:noalloc path")
			return
		case types.Universe.Lookup("append"):
			if !appendGuarded(call, stack) {
				report(call.Pos(), "append may grow its backing array on the //wec:noalloc path; guard with len < cap or annotate //wec:alloc")
			}
			return
		}
	}
	if name := calleeFullName(pass.TypesInfo, call); name != "" {
		if fn, ok := pass.TypesInfo.Uses[calleeIdent(call)].(*types.Func); ok && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "fmt", "errors":
				report(call.Pos(), "%s call allocates on the //wec:noalloc path", name)
				return
			}
		}
	}
	// Interface boxing of arguments.
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		if sig.Variadic() && i >= sig.Params().Len()-1 {
			if call.Ellipsis != token.NoPos {
				continue
			}
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		} else if i < sig.Params().Len() {
			param = sig.Params().At(i).Type()
		}
		if param != nil {
			checkBoxing(pass, param, arg, report)
		}
	}
}

// checkBoxing reports storing a non-pointer-shaped concrete value into an
// interface-typed destination — the conversion materializes the value on
// the heap. Pointer-shaped payloads (pointers, maps, channels, funcs) and
// untyped nil are stored inline and stay free.
func checkBoxing(pass *Pass, dst types.Type, src ast.Expr, report func(token.Pos, string, ...any)) {
	if tv, ok := pass.TypesInfo.Types[src]; ok && tv.IsNil() {
		return
	}
	checkBoxingType(pass, dst, pass.TypesInfo.TypeOf(src), src.Pos(), report)
}

// checkBoxingType is the type-level core of checkBoxing, for sources that
// are tuple elements rather than expressions.
func checkBoxingType(pass *Pass, dst, src types.Type, pos token.Pos, report func(token.Pos, string, ...any)) {
	if dst == nil || !types.IsInterface(dst.Underlying()) {
		return
	}
	if src == nil || types.IsInterface(src.Underlying()) {
		return
	}
	switch src.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return
	}
	report(pos, "boxing %s into %s allocates on the //wec:noalloc path", types.TypeString(src, types.RelativeTo(pass.Pkg)), types.TypeString(dst, types.RelativeTo(pass.Pkg)))
}

// appendGuarded reports whether an append call sits under a
// `len(x) < cap(x)` (or `cap(x) > len(x)`) guard for the same first
// argument — the arena idiom whose append can never reallocate. Both the
// `if` form and a tagless switch's `case len(x) < cap(x):` clause count.
func appendGuarded(call *ast.CallExpr, stack []ast.Node) bool {
	if len(call.Args) == 0 {
		return false
	}
	target := exprString(call.Args[0])
	for i := len(stack) - 1; i >= 0; i-- {
		switch st := stack[i].(type) {
		case *ast.IfStmt:
			if lenCapGuard(st.Cond, target) {
				return true
			}
		case *ast.CaseClause:
			// Only a tagless switch's case expression is a guard; a tagged
			// switch compares it to the tag, which proves nothing.
			if sw := enclosingSwitch(stack[:i]); sw != nil && sw.Tag == nil {
				for _, e := range st.List {
					if lenCapGuard(e, target) {
						return true
					}
				}
			}
		}
	}
	return false
}

// lenCapGuard reports whether cond is `len(target) < cap(target)` (or the
// flipped `cap > len`), matched textually on the operand.
func lenCapGuard(cond ast.Expr, target string) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	l, r := be.X, be.Y
	if be.Op == token.GTR {
		l, r = r, l
	} else if be.Op != token.LSS {
		return false
	}
	return builtinArg(l, "len") == target && builtinArg(r, "cap") == target
}

// enclosingSwitch returns the nearest enclosing expression switch, or nil
// if a type switch intervenes (its case clauses carry types, not guards).
func enclosingSwitch(stack []ast.Node) *ast.SwitchStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.SwitchStmt:
			return s
		case *ast.TypeSwitchStmt:
			return nil
		}
	}
	return nil
}

// builtinArg returns the printed argument of a len/cap call, "" otherwise.
func builtinArg(e ast.Expr, name string) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return ""
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return ""
	}
	return exprString(call.Args[0])
}

// escapingFuncLit reports whether the func literal on top of the stack is
// in an escaping position: returned, or assigned/stored somewhere (a
// literal passed directly as a call argument or invoked in place is
// presumed non-escaping — the hot path's visit-callback idiom).
func escapingFuncLit(stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.CallExpr:
			return false // argument or in-place invocation
		case *ast.ReturnStmt:
			return true
		case *ast.AssignStmt:
			// Assigning to a plain local is the `helper := func(){...}`
			// idiom (stack-allocatable); storing into a field, index, or
			// dereference escapes.
			for _, lhs := range p.Lhs {
				switch ast.Unparen(lhs).(type) {
				case *ast.Ident:
				default:
					return true
				}
			}
			return false
		case ast.Expr:
			continue
		default:
			return false
		}
	}
	return false
}

// calleeIdent returns the identifier naming a call's callee (the selector's
// Sel or the bare ident); nil otherwise.
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel
	case *ast.Ident:
		return fun
	}
	return nil
}

// exprString renders an expression for syntactic comparison (the append
// guard matches len/cap operands textually).
func exprString(e ast.Expr) string { return types.ExprString(e) }

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isSliceType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}
