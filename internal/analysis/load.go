package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one loaded, parsed, type-checked unit of analysis. In-package
// test files are analyzed together with the package's own files; an external
// test package (package foo_test) loads as its own unit with path
// "<path>_test".
type Package struct {
	// Path is the package's import path (plus "_test" for external tests).
	Path string
	// Dir is the package's source directory.
	Dir string
	// Fset resolves positions for Files.
	Fset *token.FileSet
	// Files are the parsed files, comments included.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's fact maps for Files.
	Info *types.Info
	// Directives indexes the //wec: directives of Files.
	Directives *DirectiveIndex
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	Dir          string
	ImportPath   string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// Load resolves package patterns with the go tool, parses every selected
// file (build-tag filtering comes from `go list`, so the analyzed file set
// is exactly what `go build` / `go test` would compile on this platform),
// and type-checks each package against the standard library's source
// importer — no external loader dependency. Test files are included:
// in-package tests join their package; external test packages become their
// own units.
func Load(patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %w", patterns, err)
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			break
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", lp.ImportPath)
		}
		var main []string
		main = append(main, lp.GoFiles...)
		main = append(main, lp.TestGoFiles...)
		sort.Strings(main)
		for _, unit := range []struct {
			path  string
			names []string
		}{
			{lp.ImportPath, main},
			{lp.ImportPath + "_test", lp.XTestGoFiles},
		} {
			if len(unit.names) == 0 {
				continue
			}
			paths := make([]string, len(unit.names))
			for i, n := range unit.names {
				paths[i] = filepath.Join(lp.Dir, n)
			}
			pkg, err := check(fset, imp, unit.path, lp.Dir, paths)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// LoadFiles parses and type-checks one explicit file set as a package with
// the given import path (the analysistest fixture entry point; scoped
// analyzers see pkgPath as the package's identity). A fresh importer per
// call keeps fixture type universes independent.
func LoadFiles(pkgPath string, files []string) (*Package, error) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	return check(fset, imp, pkgPath, filepath.Dir(files[0]), files)
}

// check parses and type-checks one package unit.
func check(fset *token.FileSet, imp types.Importer, pkgPath, dir string, paths []string) (*Package, error) {
	var files []*ast.File
	for _, path := range paths {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", pkgPath, err)
	}
	return &Package{
		Path:       pkgPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		Directives: IndexDirectives(fset, files),
	}, nil
}
