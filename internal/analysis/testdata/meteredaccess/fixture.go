// Package fixture exercises the meteredaccess rule. It is loaded under the
// import path repro/internal/decomp, which puts it in MeteredPackages scope.
package fixture

import (
	"repro/internal/asym"
	"repro/internal/graph"
)

func flagged(g *graph.Graph, a *asym.Array, a64 *asym.Array64, b *asym.BitArray) {
	_ = g.Adj(0)                 // want "unmetered access"
	_ = g.Degree(0)              // want "unmetered access"
	_ = g.Edges()                // want "unmetered access"
	_ = g.EdgeIndex(0, 1, 0)     // want "unmetered access"
	_ = g.EdgeMultiplicity(0, 1) // want "unmetered access"
	_ = a.Raw()                  // want "unmetered access"
	_ = a64.Raw()                // want "unmetered access"
	_ = b.RawGet(0)              // want "unmetered access"
}

func lineEscape(g *graph.Graph, m *asym.Meter) {
	m.Read(1)
	_ = g.Degree(0) //wec:unmetered charged by the m.Read above
}

func lineAboveEscape(g *graph.Graph, m *asym.Meter) {
	m.Read(1)
	//wec:unmetered charged by the m.Read above
	_ = g.Adj(0)
}

// funcEscape is a reference-style helper whose whole body is exempt.
//
//wec:unmetered reference implementation, not cost-accounted
func funcEscape(g *graph.Graph) {
	_ = g.Adj(0)
	_ = g.Edges()
}

func metered(vw graph.View) int32 {
	deg := vw.Degree(0)
	if deg == 0 {
		return -1
	}
	return vw.Neighbor(0, 0)
}
