package fixture

import "repro/internal/graph"

// Test files are exempt: tests assert on results, cost accounting binds
// algorithm code. No diagnostics expected anywhere in this file.
func rawInTest(g *graph.Graph) int {
	total := 0
	for _, e := range g.Edges() {
		total += int(e[0]) + len(g.Adj(int(e[1])))
	}
	return total
}
