// Package fixture exercises the noallocpath rule.
package fixture

import "fmt"

type pair struct{ a, b int }

//wec:noalloc
func flagged(xs []int, bs []byte, s string, n int) {
	_ = make([]int, n) // want "make allocates"
	_ = new(int)       // want "new allocates"
	xs = append(xs, 1) // want "append may grow its backing array"
	_ = []int{1, 2}    // want "slice literal allocates"
	_ = map[int]int{}  // want "map literal allocates"
	_ = &pair{a: 1}    // want "&composite literal escapes"
	_ = s + "suffix"   // want "string concatenation allocates"
	_ = string(bs)     // want "string/slice conversion allocates"
	_ = []byte(s)      // want "string/slice conversion allocates"
	_ = fmt.Sprint(n)  // want "fmt.Sprint call allocates"
	var sink any
	sink = n // want "boxing int into any"
	_ = sink
	go func() {}() // want "go statement allocates a goroutine"
}

//wec:noalloc
func addrOfLocal(n int) *int {
	return &n // want "taking the address of local n"
}

//wec:noalloc
func boxedReturn(n int) any {
	return n // want "boxing int into any"
}

//wec:noalloc
func guardedAppend(xs []int) []int {
	if len(xs) < cap(xs) {
		xs = append(xs, 1)
	}
	if cap(xs) > len(xs) {
		xs = append(xs, 2)
	}
	return xs
}

//wec:noalloc
func switchGuardedAppend(xs []int) []int {
	switch {
	case len(xs) < cap(xs):
		xs = append(xs, 1)
	}
	switch false {
	case len(xs) < cap(xs): // tag comparison: this arm runs when len >= cap
		xs = append(xs, 2) // want "append may grow its backing array"
	}
	return xs
}

//wec:noalloc
func tupleDefine(src func() (int, error)) (int, error) {
	n, err := src() // := infers the exact tuple types: no conversion, no boxing
	return n, err
}

//wec:noalloc
func tupleAssignBoxes(src func() (int, *pair)) {
	var a, p any
	a, p = src() // want "boxing int into any"
	_, _ = a, p
}

//wec:noalloc
func escapedAlloc(n int) []int {
	return make([]int, n) //wec:alloc cold-path table build, measured separately
}

//wec:noalloc
func closures(visit func(func(int))) func() int {
	visit(func(int) {}) // a literal passed as an argument is presumed non-escaping
	helper := func() int { return 1 }
	_ = helper()
	return func() int { return 2 } // want "stored or returned closure"
}

//wec:noalloc
func pointerShaped(p *pair, m map[int]int) any {
	var sink any
	sink = p // pointers are stored inline in interfaces
	sink = m
	return sink
}

// unannotated is not on the noalloc path: nothing is flagged.
func unannotated(n int) []int {
	return make([]int, n)
}
