// Package fixture exercises the docstyle rule. It is loaded under the
// import path repro/internal/graph, which puts it in DocPackages scope.
package fixture

// Documented carries a doc comment.
type Documented struct{}

// Method carries a doc comment.
func (Documented) Method() {}

func (Documented) Bare() {} // want "exported method Documented.Bare has no doc comment"

type Bare struct{} // want "exported type Bare has no doc comment"

func Exported() {} // want "exported func Exported has no doc comment"

// unexported identifiers are out of scope.
type hidden struct{}

func helper() {}

func (hidden) Method() {}

var _ = helper
var _ = hidden{}
