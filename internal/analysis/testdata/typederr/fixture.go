// Package fixture exercises the typederr rule.
package fixture

import (
	"errors"
	"strings"
)

// ErrBoom is a sentinel error of this package.
var ErrBoom = errors.New("boom")

// other is package-level but not Err*-named: not a sentinel.
var other = errors.New("other")

func compare(err error) bool {
	if err == ErrBoom { // want "sentinel error ErrBoom compared with =="
		return true
	}
	if ErrBoom != err { // want "sentinel error ErrBoom compared with !="
		return true
	}
	switch err {
	case nil:
		return false
	case ErrBoom: // want "sentinel error ErrBoom matched by switch case"
		return true
	}
	return false
}

func text(err error) bool {
	if err.Error() == "boom" { // want "error text compared with =="
		return true
	}
	if strings.Contains(err.Error(), "boom") { // want "strings.Contains over error text"
		return true
	}
	return strings.HasPrefix(err.Error(), "bo") // want "strings.HasPrefix over error text"
}

func allowed(err error) bool {
	if errors.Is(err, ErrBoom) {
		return true
	}
	if err == other { // not Err*-named: identity comparison is out of scope
		return true
	}
	if strings.Contains("boom", "oo") { // no error text involved
		return true
	}
	return err == nil
}
