// Package fixture exercises the snapshotsafe rule.
package fixture

// Snap is published behind an atomic pointer and must freeze after build.
//
//wec:immutable
type Snap struct {
	epoch int
	n     int
	inner inner
	buf   []int
}

type inner struct{ depth int }

// Plain is an ordinary mutable type.
type Plain struct{ n int }

// newSnap is the constructor.
//
//wec:mutator constructor; the snapshot is not shared until it returns
func newSnap(epoch int) *Snap {
	s := &Snap{}
	s.epoch = epoch
	s.n = 1
	return s
}

func mutateOutside(s *Snap) {
	s.epoch = 9       // want "assignment to field epoch of snapshot-immutable type Snap"
	s.n++             // want "assignment to field n of snapshot-immutable type Snap"
	s.inner.depth = 3 // want "assignment to field inner of snapshot-immutable type Snap"
	s.buf[0] = 1      // want "assignment to field buf of snapshot-immutable type Snap"
}

func mutatePlain(p *Plain) {
	p.n = 1
	p.n++
}

func readOnly(s *Snap) int {
	return s.epoch + s.n
}
