// Package fixture exercises the wecdirective rule. Expectations live in the
// analysis package's unit test (a want comment cannot share a line with the
// directive comment it describes).
package fixture

//wec:unmeterd a typo that would silently disable the escape
func typo() {}

//wec:unmetered
func missingReason() {}

//wec:mutator
func missingMutatorReason() {}

//wec:unmetered charged by the caller
func ok() {}

//wec:noalloc
func okNoReasonNeeded() {}

//wec:immutable
type okType struct{}

var _ = okType{}
