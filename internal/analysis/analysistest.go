package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// RunFixture loads the fixture package in dir under the import path
// pkgPath, runs one analyzer over it, and compares the diagnostics against
// `// want "regexp"` expectations in the fixture source — the analysistest
// convention: a want comment names (one or more quoted regexps, each
// matched against a separate diagnostic) what the analyzer must report on
// that line, and any diagnostic without a matching want fails the test.
// pkgPath matters for scoped analyzers: a fixture loaded under
// "repro/internal/decomp" is in meteredaccess scope, one under
// "fixture/free" is not.
func RunFixture(t *testing.T, a *Analyzer, pkgPath, dir string) {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files in %s: %v", dir, err)
	}
	sort.Strings(names)
	pkg, err := LoadFiles(pkgPath, names)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, ok := parseWant(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, p := range patterns {
					rx, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants[k] = append(wants[k], rx)
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := -1
		for i, rx := range wants[k] {
			if rx.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s:%d: unexpected diagnostic: %s", d.Pos.Filename, d.Pos.Line, d.Message)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, rxs := range wants {
		for _, rx := range rxs {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, rx)
		}
	}
}

// wantRe matches the quoted regexps of a `// want "..." "..."` comment.
var wantRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// parseWant extracts the quoted patterns from a want comment.
func parseWant(comment string) ([]string, bool) {
	body, ok := strings.CutPrefix(comment, "// want ")
	if !ok {
		return nil, false
	}
	var out []string
	for _, q := range wantRe.FindAllString(body, -1) {
		s, err := strconv.Unquote(q)
		if err != nil {
			continue
		}
		out = append(out, s)
	}
	return out, len(out) > 0
}

// FixtureDir returns testdata/<name> relative to the caller's working
// directory (the analysis package directory under `go test`).
func FixtureDir(t *testing.T, name string) string {
	t.Helper()
	dir := filepath.Join("testdata", name)
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("fixture dir %s: %v", dir, err)
	}
	return dir
}

// posLine is a test helper resolving a token.Pos to its line.
func posLine(fset *token.FileSet, pos token.Pos) int { return fset.Position(pos).Line }
