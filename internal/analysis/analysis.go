// Package analysis is the repository's custom static-analysis suite: a
// dependency-free miniature of golang.org/x/tools/go/analysis (which the
// no-new-dependencies constraint rules out) plus the analyzers that encode
// this repo's load-bearing invariants as machine-checked rules:
//
//   - meteredaccess: the paper-pristine algorithm packages must reach graph
//     adjacency and label storage through the cost-metered accessors
//     (graph.View, asym.Array.Get/Set), never the raw unmetered ones,
//     unless the access is annotated //wec:unmetered <reason>.
//   - snapshotsafe: types marked //wec:immutable (the serving snapshot and
//     everything it reaches — the oracles, the decomposition) may only have
//     fields assigned inside functions annotated //wec:mutator, catching
//     mutate-after-publish races deterministically where -race catches them
//     probabilistically.
//   - typederr: sentinel errors (conn.ErrNeedsRebuild, serve.ErrPersist,
//     ...) must be tested with errors.Is, never == / != or string matching.
//   - noallocpath: functions annotated //wec:noalloc (the FastAnswerer
//     query hot path) are checked for allocation-shaped constructs; the
//     runtime testing.AllocsPerRun gate in internal/serve backs the static
//     check with ground truth.
//   - docstyle: the godoc-coverage rule of internal/lintdoc, run as an
//     analyzer over the API-bearing packages.
//   - wecdirective: hygiene for the //wec:* directives themselves (unknown
//     names, missing reasons), so the escape hatches cannot silently rot.
//
// The cmd/weclint multichecker runs every analyzer over a package pattern
// and is wired into `make lint` and CI. Analyzer semantics and the
// directive grammar are documented in docs/static-analysis.md.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant check. It mirrors the x/tools shape:
// a name, a doc sentence, and a Run function applied to one package.
type Analyzer struct {
	// Name is the analyzer's identifier (lowercase, no spaces); diagnostics
	// are tagged with it and -run filters on it.
	Name string
	// Doc is a one-line description shown by `weclint -list`.
	Doc string
	// Run inspects one package via the Pass and reports findings through
	// pass.Reportf. A non-nil error aborts the whole lint run (reserved for
	// analyzer bugs, not findings).
	Run func(pass *Pass) error
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the analyzer this pass runs.
	Analyzer *Analyzer
	// Fset maps token positions to file/line (shared by all files).
	Fset *token.FileSet
	// Files are the package's parsed files, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's Uses/Defs/Types/Selections maps.
	TypesInfo *types.Info
	// Directives indexes every //wec: comment directive in Files.
	Directives *DirectiveIndex

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding: a position, the analyzer that produced it,
// and the message.
type Diagnostic struct {
	// Analyzer names the producing analyzer.
	Analyzer string
	// Pos is the finding's resolved file position.
	Pos token.Position
	// Message states the violated invariant and the fix.
	Message string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Run applies every analyzer to every package and returns the findings
// sorted by position. Analyzer errors (not findings) abort the run.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.Info,
				Directives: pkg.Directives,
				diags:      &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		MeteredAccess,
		SnapshotSafe,
		TypedErr,
		NoAllocPath,
		DocStyle,
		WecDirective,
	}
}
