package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// TypedErr enforces the typed-error ladder contract: the repository's
// sentinel errors (conn.ErrNeedsRebuild, oracle.ErrNeedsRebuild,
// serve.ErrPersist, serve.ErrRebuildFailed, serve.ErrBusy, and every other
// package-level Err* variable in this module) must be tested with
// errors.Is, never with == / != or by matching Error() text. The serving
// layer wraps these sentinels (fmt.Errorf("%w: ...")) as they climb the
// strategy ladder, so identity comparison silently stops matching one
// wrapping layer later — exactly the drift a machine check prevents.
var TypedErr = &Analyzer{
	Name: "typederr",
	Doc:  "sentinel errors must be compared with errors.Is, not == or string matching",
	Run:  runTypedErr,
}

func runTypedErr(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{x.X, x.Y} {
					if obj := sentinelErrorVar(pass, side); obj != nil {
						pass.Reportf(x.Pos(),
							"sentinel error %s compared with %s; use errors.Is (wrapped sentinels do not compare identical)",
							obj.Name(), x.Op)
						return true
					}
				}
				if isErrorTextExpr(pass, x.X) || isErrorTextExpr(pass, x.Y) {
					pass.Reportf(x.Pos(),
						"error text compared with %s; match the sentinel with errors.Is instead of its message", x.Op)
				}
			case *ast.SwitchStmt:
				if x.Tag == nil {
					return true
				}
				for _, stmt := range x.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, v := range cc.List {
						if obj := sentinelErrorVar(pass, v); obj != nil {
							pass.Reportf(v.Pos(),
								"sentinel error %s matched by switch case (identity comparison); use errors.Is",
								obj.Name())
						}
					}
				}
			case *ast.CallExpr:
				// strings.Contains/HasPrefix/HasSuffix over Error() text.
				name := calleeFullName(pass.TypesInfo, x)
				switch name {
				case "strings.Contains", "strings.HasPrefix", "strings.HasSuffix":
					for _, arg := range x.Args {
						if isErrorTextExpr(pass, arg) {
							pass.Reportf(x.Pos(),
								"%s over error text; match the sentinel with errors.Is instead of its message", name)
							break
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// sentinelErrorVar resolves e to a package-level error variable named Err*
// declared in this module (or the package under analysis); nil otherwise.
func sentinelErrorVar(pass *Pass, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil // not package-level
	}
	if !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	if !inThisModule(v.Pkg(), pass.Pkg) {
		return nil
	}
	errType := types.Universe.Lookup("error").Type()
	if !types.AssignableTo(v.Type(), errType) {
		return nil
	}
	return v
}

// inThisModule reports whether pkg belongs to this module (or is the
// package under analysis — fixture packages load under synthetic paths).
func inThisModule(pkg, cur *types.Package) bool {
	if pkg == cur {
		return true
	}
	return pkg.Path() == "repro" || strings.HasPrefix(pkg.Path(), "repro/")
}

// isErrorTextExpr reports whether e is a call of the error interface's
// Error method (the string form of an error).
func isErrorTextExpr(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	recv := pass.TypesInfo.TypeOf(sel.X)
	if recv == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	return types.AssignableTo(recv, errType)
}
