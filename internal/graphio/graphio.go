// Package graphio reads and writes the plain edge-list format used by
// cmd/graphgen and cmd/decompstat: an optional "# n m" header line followed
// by one "u v" pair per line. Blank lines and #-comments are ignored. The
// header is recognized strictly: only a comment whose content is exactly
// two non-negative integers, appearing before any edge line, declares
// n and m — any other comment (including ones that merely start with a
// number, like "# 12 monkeys") is skipped. A declared m is cross-checked
// against the parsed edge count. Without a header, n is inferred as max
// vertex id + 1.
package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// Read parses an edge list into a Graph.
func Read(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var edges [][2]int32
	n := -1
	declaredM := -1
	headerSeen := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			// A header is exactly "# <n> <m>" with both fields non-negative
			// integers, before any edge line; everything else is a comment.
			if !headerSeen && len(edges) == 0 {
				fields := strings.Fields(strings.TrimPrefix(text, "#"))
				if len(fields) == 2 {
					hn, errN := strconv.Atoi(fields[0])
					hm, errM := strconv.Atoi(fields[1])
					if errN == nil && errM == nil && hn >= 0 && hm >= 0 {
						n = hn
						declaredM = hm
						headerSeen = true
					}
				}
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graphio: line %d: want 'u v', got %q", line, text)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: %v", line, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: %v", line, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graphio: line %d: negative vertex id", line)
		}
		edges = append(edges, [2]int32{int32(u), int32(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphio: %v", err)
	}
	if declaredM >= 0 && declaredM != len(edges) {
		return nil, fmt.Errorf("graphio: header declares m=%d but %d edges parsed", declaredM, len(edges))
	}
	if n < 0 {
		for _, e := range edges {
			if int(e[0]) >= n {
				n = int(e[0]) + 1
			}
			if int(e[1]) >= n {
				n = int(e[1]) + 1
			}
		}
		if n < 0 {
			n = 0
		}
	}
	for _, e := range edges {
		if int(e[0]) >= n || int(e[1]) >= n {
			return nil, fmt.Errorf("graphio: edge (%d,%d) exceeds declared n=%d", e[0], e[1], n)
		}
	}
	return graph.FromEdges(n, edges), nil
}

// Write emits g in the canonical format ("# n m" header, sorted edges).
func Write(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# %d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e[0], e[1]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
