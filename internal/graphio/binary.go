package graphio

// Shared binary primitives for the durable-store formats (internal/store):
// varint edge-list codecs and a CRC-framed record envelope. They live here
// rather than in store because they are graph I/O in the same sense as the
// text format above — store composes them into snapshot files and WAL
// segments, and future tools (a binary graphgen output, a snapshot
// inspector) reuse them without importing the store.
//
// All integers are protobuf-style varints (encoding/binary); signed values
// use zigzag. Edge lists come in two codecs:
//
//   - AppendEdgesDelta / DecodeEdgesDelta: a normalized (u <= v),
//     lexicographically sorted list — the shape graph.Edges() returns —
//     delta-encoded so runs of edges around the same vertex cost a byte or
//     two each. Used for snapshot graph sections.
//   - AppendEdgesRaw / DecodeEdgesRaw: an arbitrary pair list, order and
//     duplicates preserved exactly. Used for WAL update batches, which
//     must replay byte-for-byte as they were accepted.
//
// The frame envelope (WriteFrame / ReadFrame) is what makes append-only
// logs crash-tolerant: every record is tag + length + payload + CRC32-C of
// all three, so a torn tail (partial final write at the crash point) or a
// corrupted record is detected and reported as ErrCorrupt rather than
// misparsed as data.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ErrCorrupt reports a frame or section whose checksum, length, or
// structure does not match its declared encoding. Callers replaying a log
// use errors.Is to distinguish a damaged tail from an I/O failure.
var ErrCorrupt = errors.New("graphio: corrupt binary data")

// crcTable is the Castagnoli polynomial table shared by every checksum in
// the binary formats (hardware-accelerated on common platforms).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32-C of b — the one checksum function every
// binary format in this module uses.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, crcTable) }

// MaxFramePayload bounds a single frame's payload. It comfortably holds the
// largest legal WAL record (a MaxUpdateEdges-sized batch is ~5 MB of raw
// varint pairs) while keeping a corrupted length field from driving an
// allocation of gigabytes during replay.
const MaxFramePayload = 64 << 20

// AppendEdgesDelta appends a delta-encoded edge list to buf. The list must
// be normalized (u <= v per edge) and sorted lexicographically — the
// canonical shape graph.Edges() produces; duplicates (parallel edges) are
// fine. Layout: count, then per edge uvarint(u - prevU) and, within a run
// of equal u, uvarint(v - prevV), else uvarint(v - u).
func AppendEdgesDelta(buf []byte, edges [][2]int32) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(edges)))
	pu, pv := int32(0), int32(0)
	for i, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || v < u {
			return nil, fmt.Errorf("graphio: edge (%d,%d) not normalized", u, v)
		}
		if u < pu || (u == pu && i > 0 && v < pv) {
			return nil, fmt.Errorf("graphio: edge list not sorted at (%d,%d)", u, v)
		}
		buf = binary.AppendUvarint(buf, uint64(u-pu))
		if u == pu && i > 0 {
			buf = binary.AppendUvarint(buf, uint64(v-pv))
		} else {
			buf = binary.AppendUvarint(buf, uint64(v-u))
		}
		pu, pv = u, v
	}
	return buf, nil
}

// DecodeEdgesDelta reads a list written by AppendEdgesDelta from b,
// returning the edges and the remaining bytes.
func DecodeEdgesDelta(b []byte) ([][2]int32, []byte, error) {
	count, b, err := readUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	// Every encoded edge costs at least two bytes, so a count beyond that
	// bound is a corrupted length, not a huge list — reject before the
	// allocation it would size.
	if count > uint64(len(b))/2 {
		return nil, nil, fmt.Errorf("%w: edge count %d exceeds %d remaining bytes", ErrCorrupt, count, len(b))
	}
	edges := make([][2]int32, 0, count)
	pu, pv := int64(0), int64(0)
	for i := uint64(0); i < count; i++ {
		du, rest, err := readUvarint(b)
		if err != nil {
			return nil, nil, err
		}
		dv, rest, err := readUvarint(rest)
		if err != nil {
			return nil, nil, err
		}
		u := pu + int64(du)
		var v int64
		if du == 0 && i > 0 {
			v = pv + int64(dv)
		} else {
			v = u + int64(dv)
		}
		if u > int64(1)<<31-1 || v > int64(1)<<31-1 {
			return nil, nil, fmt.Errorf("%w: edge (%d,%d) overflows int32", ErrCorrupt, u, v)
		}
		edges = append(edges, [2]int32{int32(u), int32(v)})
		pu, pv = u, v
		b = rest
	}
	return edges, b, nil
}

// AppendEdgesRaw appends an order-preserving pair list to buf: count, then
// one zigzag varint per coordinate. Any int32 pairs are legal (the WAL
// records updates exactly as accepted, unnormalized).
func AppendEdgesRaw(buf []byte, edges [][2]int32) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(edges)))
	for _, e := range edges {
		buf = binary.AppendVarint(buf, int64(e[0]))
		buf = binary.AppendVarint(buf, int64(e[1]))
	}
	return buf
}

// DecodeEdgesRaw reads a list written by AppendEdgesRaw from b, returning
// the edges and the remaining bytes.
func DecodeEdgesRaw(b []byte) ([][2]int32, []byte, error) {
	count, b, err := readUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if count > uint64(len(b))/2 {
		return nil, nil, fmt.Errorf("%w: pair count %d exceeds %d remaining bytes", ErrCorrupt, count, len(b))
	}
	edges := make([][2]int32, 0, count)
	for i := uint64(0); i < count; i++ {
		u, rest, err := readVarint(b)
		if err != nil {
			return nil, nil, err
		}
		v, rest, err := readVarint(rest)
		if err != nil {
			return nil, nil, err
		}
		if u < -1<<31 || u > 1<<31-1 || v < -1<<31 || v > 1<<31-1 {
			return nil, nil, fmt.Errorf("%w: pair (%d,%d) overflows int32", ErrCorrupt, u, v)
		}
		edges = append(edges, [2]int32{int32(u), int32(v)})
		b = rest
	}
	return edges, b, nil
}

// readUvarint decodes one uvarint from b, returning the value and the rest.
func readUvarint(b []byte) (uint64, []byte, error) {
	x, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: truncated uvarint", ErrCorrupt)
	}
	return x, b[n:], nil
}

// readVarint decodes one zigzag varint from b, returning the value and the
// rest.
func readVarint(b []byte) (int64, []byte, error) {
	x, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: truncated varint", ErrCorrupt)
	}
	return x, b[n:], nil
}

// WriteFrame writes one record to w: tag byte, payload length (uvarint),
// payload, and a trailing CRC32-C over tag+length+payload (4 bytes LE).
// The write is a single w.Write call, so on most filesystems a crash leaves
// either the whole frame or a detectable partial tail, never an undetected
// splice.
func WriteFrame(w io.Writer, tag byte, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("graphio: frame payload %d exceeds %d", len(payload), MaxFramePayload)
	}
	buf := make([]byte, 0, len(payload)+16)
	buf = append(buf, tag)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, Checksum(buf))
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one record written by WriteFrame. At a clean end of input
// it returns io.EOF; a partial or checksum-failing record returns an error
// wrapping ErrCorrupt (the torn-tail signal log replay stops on).
func ReadFrame(r io.ByteReader) (tag byte, payload []byte, err error) {
	header := make([]byte, 0, 16)
	first, err := r.ReadByte()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, err
	}
	header = append(header, first)
	// Decode the length varint byte by byte so we know exactly which bytes
	// the checksum covers.
	var length uint64
	for shift := uint(0); ; shift += 7 {
		b, err := r.ReadByte()
		if err != nil {
			return 0, nil, fmt.Errorf("%w: truncated frame header", ErrCorrupt)
		}
		header = append(header, b)
		length |= uint64(b&0x7f) << shift
		if b < 0x80 {
			break
		}
		if shift > 63 {
			return 0, nil, fmt.Errorf("%w: frame length varint overflow", ErrCorrupt)
		}
	}
	if length > MaxFramePayload {
		return 0, nil, fmt.Errorf("%w: frame payload %d exceeds %d", ErrCorrupt, length, MaxFramePayload)
	}
	payload = make([]byte, length)
	if err := readFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated frame payload", ErrCorrupt)
	}
	sum := make([]byte, 4)
	if err := readFull(r, sum); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated frame checksum", ErrCorrupt)
	}
	crc := Checksum(header)
	crc = crc32.Update(crc, crcTable, payload)
	if crc != binary.LittleEndian.Uint32(sum) {
		return 0, nil, fmt.Errorf("%w: frame checksum mismatch", ErrCorrupt)
	}
	return first, payload, nil
}

// readFull fills buf from a ByteReader (which io.ReadFull cannot consume).
func readFull(r io.ByteReader, buf []byte) error {
	if rr, ok := r.(io.Reader); ok {
		_, err := io.ReadFull(rr, buf)
		return err
	}
	for i := range buf {
		b, err := r.ReadByte()
		if err != nil {
			return err
		}
		buf[i] = b
	}
	return nil
}
