// Package repro's root benchmark harness: one benchmark per table and
// figure of the paper (see the per-experiment index in DESIGN.md), plus the
// ablation benches for the design choices DESIGN.md calls out.
//
// Every benchmark reports the cost-model metrics the paper's claims are
// about — asymmetric writes ("writes/op") and Asymmetric-RAM work
// ("work/op") — alongside wall-clock time. Absolute wall-clock numbers are
// meaningless for the reproduction (the substrate is a cost simulator);
// the reported metrics are the measurement.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/asym"
	"repro/internal/bicc"
	"repro/internal/conn"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/graph"
	"repro/internal/parallel"
)

func report(b *testing.B, c asym.Cost, depth int64) {
	b.ReportMetric(float64(c.Writes), "writes/op")
	b.ReportMetric(float64(c.Reads), "reads/op")
	b.ReportMetric(float64(c.Work()), "work/op")
	if depth > 0 {
		b.ReportMetric(float64(depth), "depth/op")
	}
}

// BenchmarkTable1ConnDense: Table 1 row "connectivity, m ∈ Ω(√ω n)" —
// prior-work contraction (Θ(ωm) work) vs Theorem 4.2 (O(m + ωn)).
func BenchmarkTable1ConnDense(b *testing.B) {
	g := graph.GNM(4096, 32768, 42, true)
	const omega = 64
	b.Run("prior-contraction", func(b *testing.B) {
		var last asym.Cost
		for i := 0; i < b.N; i++ {
			s := core.New(g, core.Config{Omega: omega, Seed: 7})
			s.ConnectivityBaseline()
			last = s.Cost()
		}
		report(b, last, 0)
	})
	b.Run("ours-thm4.2", func(b *testing.B) {
		var last asym.Cost
		var depth int64
		for i := 0; i < b.N; i++ {
			s := core.New(g, core.Config{Omega: omega, Seed: 7})
			s.ConnectivityParallel(false)
			last, depth = s.Cost(), s.Depth()
		}
		report(b, last, depth)
	})
}

// BenchmarkTable1ConnSparse: Table 1 row "connectivity, m ∈ o(√ω n)" —
// the sublinear-write oracle (Theorem 4.4) vs sequential BFS labeling.
func BenchmarkTable1ConnSparse(b *testing.B) {
	g := graph.RandomRegular(8192, 3, 21)
	for _, omega := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("oracle-omega%d", omega), func(b *testing.B) {
			var last asym.Cost
			for i := 0; i < b.N; i++ {
				s := core.New(g, core.Config{Omega: omega, Seed: 5})
				s.NewConnectivityOracle()
				last = s.Cost()
			}
			report(b, last, 0)
		})
	}
	b.Run("bfs-labeling", func(b *testing.B) {
		var last asym.Cost
		for i := 0; i < b.N; i++ {
			s := core.New(g, core.Config{Omega: 256, Seed: 5})
			s.ConnectivitySequential(false)
			last = s.Cost()
		}
		report(b, last, 0)
	})
}

// BenchmarkTable1BiccDense: Table 1 biconnectivity — BC labeling (O(m+ωn))
// vs the classic Θ(m)-size output (modeled as the same pass plus m writes).
func BenchmarkTable1BiccDense(b *testing.B) {
	g := graph.GNM(4096, 32768, 17, true)
	const omega = 64
	b.Run("bc-labeling", func(b *testing.B) {
		var last asym.Cost
		for i := 0; i < b.N; i++ {
			s := core.New(g, core.Config{Omega: omega, Seed: 3})
			s.NewBCLabeling()
			last = s.Cost()
		}
		report(b, last, 0)
	})
	b.Run("classic-output", func(b *testing.B) {
		var last asym.Cost
		for i := 0; i < b.N; i++ {
			s := core.New(g, core.Config{Omega: omega, Seed: 3})
			s.NewBCLabeling()
			s.Meter().Write(g.M()) // the per-edge output array of [21, 32]
			last = s.Cost()
		}
		report(b, last, 0)
	})
}

// BenchmarkTable1BiccSparse: Table 1 biconnectivity, sparse regime — the
// Theorem 5.3 oracle in O(n/√ω) writes.
func BenchmarkTable1BiccSparse(b *testing.B) {
	g := graph.RandomRegular(4096, 3, 31)
	for _, omega := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("omega%d", omega), func(b *testing.B) {
			var last asym.Cost
			for i := 0; i < b.N; i++ {
				s := core.New(g, core.Config{Omega: omega, Seed: 9})
				s.NewBiconnectivityOracle()
				last = s.Cost()
			}
			report(b, last, 0)
		})
	}
}

// BenchmarkTable1Query: Table 1 query columns — O(1) for the dense
// structures, O(√ω) connectivity / O(ω) biconnectivity for the oracles.
func BenchmarkTable1Query(b *testing.B) {
	g := graph.RandomRegular(8192, 3, 31)
	for _, omega := range []int{64, 256, 1024} {
		s := core.New(g, core.Config{Omega: omega, Seed: 9})
		bc := s.NewBCLabeling()
		co := s.NewConnectivityOracle()
		bo := s.NewBiconnectivityOracle()
		rng := graph.NewRNG(13)
		pair := func() (int32, int32) {
			return int32(rng.Intn(g.N())), int32(rng.Intn(g.N()))
		}
		b.Run(fmt.Sprintf("bc-labeling-omega%d", omega), func(b *testing.B) {
			before := bc.QueryCost()
			for i := 0; i < b.N; i++ {
				u, v := pair()
				bc.SameBCC(u, v)
			}
			d := bc.QueryCost().Sub(before)
			b.ReportMetric(float64(d.Reads)/float64(b.N), "reads/query")
		})
		b.Run(fmt.Sprintf("conn-oracle-omega%d", omega), func(b *testing.B) {
			before := co.QueryCost()
			for i := 0; i < b.N; i++ {
				u, v := pair()
				co.Connected(u, v)
			}
			d := co.QueryCost().Sub(before)
			b.ReportMetric(float64(d.Reads)/float64(b.N), "reads/query")
		})
		b.Run(fmt.Sprintf("bicc-oracle-omega%d", omega), func(b *testing.B) {
			before := bo.QueryCost()
			for i := 0; i < b.N; i++ {
				u, v := pair()
				bo.Biconnected(u, v)
			}
			d := bo.QueryCost().Sub(before)
			b.ReportMetric(float64(d.Reads)/float64(b.N), "reads/query")
		})
	}
}

// BenchmarkTable1Crossover: Table 1 "best choice when" column — on a fixed
// bounded-degree graph the winner flips from the dense algorithm to the
// sparse oracle as ω crosses (m/n)².
func BenchmarkTable1Crossover(b *testing.B) {
	g := graph.RandomRegular(8192, 3, 51)
	for _, omega := range []int{4, 64, 1024} {
		b.Run(fmt.Sprintf("dense-omega%d", omega), func(b *testing.B) {
			var last asym.Cost
			for i := 0; i < b.N; i++ {
				s := core.New(g, core.Config{Omega: omega, Seed: 13})
				s.ConnectivityParallel(false)
				last = s.Cost()
			}
			report(b, last, 0)
		})
		b.Run(fmt.Sprintf("sparse-omega%d", omega), func(b *testing.B) {
			var last asym.Cost
			for i := 0; i < b.N; i++ {
				s := core.New(g, core.Config{Omega: omega, Seed: 13})
				s.NewConnectivityOracle()
				last = s.Cost()
			}
			report(b, last, 0)
		})
	}
}

// BenchmarkFig1Decomposition: Figure 1 / Theorem 3.1 — implicit
// k-decomposition construction across k.
func BenchmarkFig1Decomposition(b *testing.B) {
	g := graph.RandomRegular(8192, 3, 61)
	for _, k := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			var last asym.Cost
			var centers int
			for i := 0; i < b.N; i++ {
				m := asym.NewMeter(k * k)
				c := parallel.NewCtx(m, asym.NewSymTracker(0))
				d := decomp.Build(c, graph.View{G: g, M: m}, k, 71, decomp.Options{})
				last, centers = m.Snapshot(), d.NumCenters()
			}
			report(b, last, 0)
			b.ReportMetric(float64(centers), "centers/op")
		})
	}
}

// BenchmarkFig2BCLabeling: Figure 2 / Lemma 5.1 — BC labeling construction
// plus its O(1) queries, on graphs with rich block structure.
func BenchmarkFig2BCLabeling(b *testing.B) {
	g := graph.Lollipop(64, 2048)
	b.Run("construct", func(b *testing.B) {
		var last asym.Cost
		for i := 0; i < b.N; i++ {
			s := core.New(g, core.Config{Omega: 64, Seed: 3})
			s.NewBCLabeling()
			last = s.Cost()
		}
		report(b, last, 0)
	})
	s := core.New(g, core.Config{Omega: 64, Seed: 3})
	bc := s.NewBCLabeling()
	b.Run("query", func(b *testing.B) {
		rng := graph.NewRNG(5)
		before := bc.QueryCost()
		for i := 0; i < b.N; i++ {
			bc.SameBCC(int32(rng.Intn(g.N())), int32(rng.Intn(g.N())))
		}
		d := bc.QueryCost().Sub(before)
		b.ReportMetric(float64(d.Reads)/float64(b.N), "reads/query")
	})
}

// BenchmarkFig3LocalGraph: Figure 3 / Lemma 5.4 — local-graph
// reconstruction cost scales as O(k²).
func BenchmarkFig3LocalGraph(b *testing.B) {
	g := graph.RandomRegular(4096, 3, 81)
	for _, k := range []int{4, 8, 16} {
		s := core.New(g, core.Config{Omega: k * k, K: k, Seed: 83})
		bo := s.NewBiconnectivityOracle()
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			rng := graph.NewRNG(85)
			before := bo.QueryCost()
			for i := 0; i < b.N; i++ {
				bo.IsArticulation(int32(rng.Intn(g.N())))
			}
			d := bo.QueryCost().Sub(before)
			b.ReportMetric(float64(d.Reads)/float64(b.N), "reads/query")
			b.ReportMetric(float64(k*k), "ksquared")
		})
	}
}

// BenchmarkThm42BetaSweep: Theorem 4.2 — writes O(n + βm) as β varies.
func BenchmarkThm42BetaSweep(b *testing.B) {
	g := graph.GNM(4096, 65536, 91, true)
	for _, beta := range []float64{1, 0.25, 1.0 / 16, 1.0 / 64} {
		b.Run(fmt.Sprintf("beta%.4f", beta), func(b *testing.B) {
			var last asym.Cost
			for i := 0; i < b.N; i++ {
				s := core.New(g, core.Config{Omega: 64, Beta: beta, Seed: 93})
				s.ConnectivityParallel(false)
				last = s.Cost()
			}
			report(b, last, 0)
		})
	}
}

// BenchmarkAlg1ParallelDepth: Lemma 3.7 — the parallel construction's
// fork-join depth stays far below its work as n grows.
func BenchmarkAlg1ParallelDepth(b *testing.B) {
	for _, n := range []int{2048, 8192} {
		g := graph.RandomRegular(n, 3, 95)
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			var last asym.Cost
			var depth int64
			for i := 0; i < b.N; i++ {
				s := core.New(g, core.Config{Omega: 64, Seed: 97})
				s.NewDecomposition(true)
				last, depth = s.Cost(), s.Depth()
			}
			report(b, last, depth)
		})
	}
}

// BenchmarkSec6DegreeBound: §6 — transform cost and oracle on the
// transformed graph for unbounded-degree inputs.
func BenchmarkSec6DegreeBound(b *testing.B) {
	g := graph.PowerLaw(4096, 4, 99)
	b.Run("transform", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graph.BoundDegree(g, 3)
		}
	})
	bd := graph.BoundDegree(g, 3)
	b.Run("oracle-on-transform", func(b *testing.B) {
		var last asym.Cost
		for i := 0; i < b.N; i++ {
			s := core.New(bd.G, core.Config{Omega: 256, Seed: 101})
			s.NewConnectivityOracle()
			last = s.Cost()
		}
		report(b, last, 0)
	})
}

// --- Ablations (DESIGN.md "key design decisions") ---

// BenchmarkAblationSecondary: without secondary centers (Algorithm 1 lines
// 3-12), primary clusters blow past k — measured via max ρ0-cluster size.
func BenchmarkAblationSecondary(b *testing.B) {
	g := graph.RandomRegular(4096, 3, 103)
	k := 8
	m := asym.NewMeter(64)
	c := parallel.NewCtx(m, asym.NewSymTracker(0))
	d := decomp.Build(c, graph.View{G: g, M: m}, k, 105, decomp.Options{})
	qm := asym.NewMeter(64)
	var withMax, withoutMax int
	b.Run("measure", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			with := map[int32]int{}
			without := map[int32]int{}
			for v := int32(0); int(v) < g.N(); v++ {
				with[d.Rho(qm, nil, v)]++
				without[d.Rho0(qm, nil, v)]++
			}
			withMax, withoutMax = 0, 0
			for _, s := range with {
				if s > withMax {
					withMax = s
				}
			}
			for _, s := range without {
				if s > withoutMax {
					withoutMax = s
				}
			}
		}
		b.ReportMetric(float64(withMax), "maxcluster-with")
		b.ReportMetric(float64(withoutMax), "maxcluster-without")
	})
	if withoutMax <= k {
		b.Log("note: sampling happened to cap primary clusters on this seed")
	}
}

// BenchmarkAblationContraction: one LDD round at β=1/ω (Theorem 4.2) vs the
// prior recursive contraction — the writes gap is the headline result.
func BenchmarkAblationContraction(b *testing.B) {
	g := graph.GNM(2048, 32768, 107, true)
	b.Run("single-ldd", func(b *testing.B) {
		var last asym.Cost
		for i := 0; i < b.N; i++ {
			s := core.New(g, core.Config{Omega: 64, Seed: 109})
			s.ConnectivityParallel(false)
			last = s.Cost()
		}
		report(b, last, 0)
	})
	b.Run("recursive-contraction", func(b *testing.B) {
		var last asym.Cost
		for i := 0; i < b.N; i++ {
			s := core.New(g, core.Config{Omega: 64, Seed: 109})
			s.ConnectivityBaseline()
			last = s.Cost()
		}
		report(b, last, 0)
	})
}

// BenchmarkAblationBCOutput: BC labeling output (O(n) words) vs the classic
// per-edge array (Θ(m) words) across densities.
func BenchmarkAblationBCOutput(b *testing.B) {
	for _, deg := range []int{4, 16, 64} {
		n := 2048
		g := graph.GNM(n, n*deg/2, 111, true)
		b.Run(fmt.Sprintf("deg%d", deg), func(b *testing.B) {
			var bcWrites int64
			for i := 0; i < b.N; i++ {
				s := core.New(g, core.Config{Omega: 64, Seed: 113})
				s.NewBCLabeling()
				bcWrites = s.Cost().Writes
			}
			b.ReportMetric(float64(bcWrites), "bc-writes")
			b.ReportMetric(float64(g.M()), "classic-writes-floor")
		})
	}
}

// BenchmarkAblationK: the k = √ω choice — construction + a query batch is
// minimized near √ω (construction cost falls with k, query cost rises).
func BenchmarkAblationK(b *testing.B) {
	g := graph.RandomRegular(4096, 3, 115)
	const omega = 256 // √ω = 16
	const queries = 4096
	for _, k := range []int{4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			var total int64
			for i := 0; i < b.N; i++ {
				s := core.New(g, core.Config{Omega: omega, K: k, Seed: 117})
				o := s.NewConnectivityOracle()
				rng := graph.NewRNG(119)
				for q := 0; q < queries; q++ {
					o.Connected(int32(rng.Intn(g.N())), int32(rng.Intn(g.N())))
				}
				total = s.Cost().Work() + o.QueryCost().Work()
			}
			b.ReportMetric(float64(total), "combined-work")
		})
	}
}

// --- Cross-implementation sanity used by the harness (fast, not a bench) ---

func TestHarnessSanity(t *testing.T) {
	// The bench graphs must be exercised by correct algorithms: spot-check
	// a few partitions against union-find ground truth.
	g := graph.GNM(512, 2048, 42, true)
	s := core.New(g, core.Config{Omega: 64, Seed: 7})
	res := s.ConnectivityParallel(false)
	if res.NumComponents != 1 {
		t.Fatalf("components = %d", res.NumComponents)
	}
	s2 := core.New(g, core.Config{Omega: 64, Seed: 7})
	if s2.ConnectivityBaseline().NumComponents != 1 {
		t.Fatal("baseline wrong")
	}
	gr := graph.RandomRegular(512, 3, 21)
	s3 := core.New(gr, core.Config{Omega: 64, Seed: 5})
	o := s3.NewConnectivityOracle()
	if !o.Connected(0, 511) {
		t.Fatal("oracle wrong")
	}
	_ = conn.Result{}
	_ = bicc.Ref{}
}

// BenchmarkAblationTieBreak: the deterministic tie-broken search order of
// §3 vs a per-call random neighbor order. Without the deterministic order,
// ρ stops being a function: repeated queries disagree on a measurable
// fraction of vertices, so clusters are not well-defined (the failure
// Lemma 3.3 exists to prevent).
func BenchmarkAblationTieBreak(b *testing.B) {
	g := graph.Grid2D(48, 48) // grids are tie-rich
	for _, unstable := range []bool{false, true} {
		name := "deterministic"
		if unstable {
			name = "unstable"
		}
		b.Run(name, func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				m := asym.NewMeter(64)
				c := parallel.NewCtx(m, asym.NewSymTracker(0))
				d := decomp.Build(c, graph.View{G: g, M: m}, 8, 5,
					decomp.Options{UnstableTieBreak: unstable})
				qm := asym.NewMeter(1)
				diff := 0
				for v := int32(0); int(v) < g.N(); v++ {
					if d.Rho(qm, nil, v) != d.Rho(qm, nil, v) {
						diff++
					}
				}
				rate = float64(diff) / float64(g.N())
			}
			b.ReportMetric(rate, "rho-disagreement-rate")
		})
	}
}

// BenchmarkOracleSpanningForest: the §4.3 spanning-forest enumeration —
// zero writes, O(√ω·n) reads.
func BenchmarkOracleSpanningForest(b *testing.B) {
	g := graph.RandomRegular(4096, 3, 7)
	s := core.New(g, core.Config{Omega: 64, Seed: 9})
	o := s.NewConnectivityOracle()
	var edges int
	before := o.QueryCost()
	for i := 0; i < b.N; i++ {
		edges = len(o.SpanningForest())
	}
	d := o.QueryCost().Sub(before)
	b.ReportMetric(float64(edges), "forest-edges")
	b.ReportMetric(float64(d.Writes)/float64(b.N), "writes/op")
	b.ReportMetric(float64(d.Reads)/float64(b.N), "reads/op")
}

// BenchmarkBatchQueries: batch query throughput for both oracles (§5.4:
// independent queries run as a parallel for).
func BenchmarkBatchQueries(b *testing.B) {
	g := graph.RandomRegular(4096, 3, 11)
	s := core.New(g, core.Config{Omega: 64, Seed: 13})
	co := s.NewConnectivityOracle()
	bo := s.NewBiconnectivityOracle()
	rng := graph.NewRNG(15)
	vs := make([]int32, 1024)
	pairs := make([][2]int32, 256)
	for i := range vs {
		vs[i] = int32(rng.Intn(g.N()))
	}
	for i := range pairs {
		pairs[i] = [2]int32{int32(rng.Intn(g.N())), int32(rng.Intn(g.N()))}
	}
	b.Run("connectivity-1024", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			co.ComponentsBatch(vs)
		}
	})
	b.Run("biconnectivity-256", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bo.BiconnectedBatch(pairs)
		}
	})
}
